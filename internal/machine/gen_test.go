package machine

import (
	"strings"
	"testing"
)

func TestStringNegativeValues(t *testing.T) {
	// Regression: diagnostics on corrupt input must print, not panic.
	if got := Resource(-1).String(); got != "Res(-1)" {
		t.Errorf("Resource(-1).String() = %q, want Res(-1)", got)
	}
	if got := Class(-1).String(); got != "class(-1)" {
		t.Errorf("Class(-1).String() = %q, want class(-1)", got)
	}
	if got := Resource(999).String(); got != "Res(999)" {
		t.Errorf("Resource(999).String() = %q, want Res(999)", got)
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name string
		mut  func(m *Machine)
	}{
		{"zero clock", func(m *Machine) { m.ClockMHz = 0 }},
		{"negative clock", func(m *Machine) { m.ClockMHz = -5 }},
		{"zero cells", func(m *Machine) { m.Cells = 0 }},
		{"zero resource count", func(m *Machine) { m.ResourceCount[ResFMul] = 0 }},
		{"negative resource count", func(m *Machine) { m.ResourceCount[ResALU] = -1 }},
		{"no float regs", func(m *Machine) { m.FloatRegs = 0 }},
		{"no int regs", func(m *Machine) { m.IntRegs = -3 }},
	}
	for _, c := range cases {
		m := Warp()
		c.mut(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a nonsense machine", c.name)
		}
	}
}

func TestGenDefaultsMatchWarpDatapath(t *testing.T) {
	m, err := Gen{}.Machine()
	if err != nil {
		t.Fatal(err)
	}
	w := Warp()
	for r := range w.ResourceCount {
		if m.ResourceCount[r] != w.ResourceCount[r] {
			t.Errorf("default gen resource %v = %d, warp has %d",
				Resource(r), m.ResourceCount[r], w.ResourceCount[r])
		}
	}
	if m.FloatRegs != w.FloatRegs || m.IntRegs != w.IntRegs {
		t.Errorf("default gen register files %d/%d, warp has %d/%d",
			m.FloatRegs, m.IntRegs, w.FloatRegs, w.IntRegs)
	}
	if m.Latency(ClassFAdd) != 7 || m.Latency(ClassFMul) != 7 || m.Latency(ClassLoad) != 3 {
		t.Errorf("default gen latencies diverge from warp")
	}
	if m.Cells != 1 {
		t.Errorf("gen machines are single-cell, got %d", m.Cells)
	}
}

func TestGenNameRoundTrips(t *testing.T) {
	gens := append(DefaultGrid(),
		Gen{},
		Gen{FAdds: 2, FMuls: 3, MemPorts: 2, Lanes: 4, FAddLat: 9, FMulLat: 11, LoadLat: 5, FloatRegs: 128, RotatingRegs: true},
	)
	for _, g := range gens {
		name := g.Name()
		if !strings.HasPrefix(name, "gen:") {
			t.Fatalf("canonical name %q lacks the gen: prefix", name)
		}
		m, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("Parse(%q) produced machine named %q", name, m.Name)
		}
		want, err := g.Machine()
		if err != nil {
			t.Fatalf("Gen%+v.Machine(): %v", g, err)
		}
		if m.Fingerprint() != want.Fingerprint() {
			t.Errorf("Parse(%q) does not round-trip: fingerprints differ", name)
		}
	}
}

func TestGenRejectsNonsense(t *testing.T) {
	bad := []Gen{
		{FAdds: -1},
		{FMulLat: -7},
		{FloatRegs: -62},
		{Lanes: 100000},
		{FAddLat: 1 << 20},
	}
	for _, g := range bad {
		if _, err := g.Machine(); err == nil {
			t.Errorf("Gen%+v.Machine() accepted a nonsense grid point", g)
		}
	}
}

func TestParseUnifiedGrammar(t *testing.T) {
	// The single parser used by every surface: w2c, softpiped,
	// livermore, warpbench, and the sweep grid.
	ok := []string{"warp", "scalar", "wide1", "wide2", "wide64",
		"gen:fa2,fm2,mem2,lat7/7/3,fr62,rot", "gen:rot", "gen:x2,mem2"}
	for _, name := range ok {
		m, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		if err := m.Validate(); err != nil {
			t.Errorf("Parse(%q) returned an invalid machine: %v", name, err)
		}
	}
	bad := []string{"", "wide", "wide0", "wide-1", "wide65", "widex", "petaflop",
		"gen:", "gen:fa0", "gen:fa2,fa3", "gen:lat7/7", "gen:rot,rot", "gen:bogus9"}
	for _, name := range bad {
		if _, err := Parse(name); err == nil {
			t.Errorf("Parse(%q) accepted a bad machine name", name)
		}
	}
	if m, _ := Parse("warp"); m.Cells != 10 {
		t.Error("Parse(warp) is not the 10-cell array")
	}
}

func TestDefaultGridValidAndInjective(t *testing.T) {
	grid := DefaultGrid()
	if len(grid) < 12 {
		t.Fatalf("default grid has %d points, want >= 12", len(grid))
	}
	seen := map[string]string{}
	names := map[string]bool{}
	rotating := 0
	for _, g := range grid {
		m, err := g.Machine()
		if err != nil {
			t.Fatalf("grid point %s: %v", g.Name(), err)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("grid point %s fails Validate: %v", g.Name(), err)
		}
		if names[m.Name] {
			t.Errorf("duplicate grid point name %s", m.Name)
		}
		names[m.Name] = true
		fp := m.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between grid points %s and %s", prev, m.Name)
		}
		seen[fp] = m.Name
		if m.RotatingRegs {
			rotating++
		}
	}
	if rotating == 0 {
		t.Error("default grid has no rotating-register point")
	}
	// Rotation is part of the machine identity: the same datapath with
	// and without rotation must not share a cache partition.
	a, _ := Gen{}.Machine()
	b, _ := Gen{RotatingRegs: true}.Machine()
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("RotatingRegs does not affect the fingerprint")
	}
}
