package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint returns a stable hex digest of everything the scheduler and
// simulator observe about the machine: resource counts, per-class
// latencies, flop weights and reservation tables, register-file sizes,
// clock and cell count.  Two machines with the same fingerprint produce
// bit-identical schedules and object code for any program, so the digest
// is a sound cache key component (internal/cache keys compiles by it).
//
// The digest is independent of representation order: reservation-table
// entries are sorted before hashing, since a table is a set of
// (resource, offset) pairs and permuting it does not change the machine.
// The Name field is deliberately excluded — renaming a configuration does
// not invalidate compiles.
func (m *Machine) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wInt(int64(len(m.ResourceCount)))
	for _, n := range m.ResourceCount {
		wInt(int64(n))
	}
	wInt(int64(len(m.Ops)))
	for c, d := range m.Ops {
		if d == nil {
			continue
		}
		wInt(int64(c))
		wInt(int64(d.Latency))
		wInt(int64(d.Flops))
		res := append([]ResUse(nil), d.Reservation...)
		sort.Slice(res, func(i, j int) bool {
			if res[i].Resource != res[j].Resource {
				return res[i].Resource < res[j].Resource
			}
			return res[i].Offset < res[j].Offset
		})
		wInt(int64(len(res)))
		for _, u := range res {
			wInt(int64(u.Resource))
			wInt(int64(u.Offset))
		}
	}
	wInt(int64(m.FloatRegs))
	wInt(int64(m.IntRegs))
	wInt(int64(m.Cells))
	if m.RotatingRegs {
		// Appended only when set so every pre-existing machine keeps its
		// historical digest (cached artifacts stay valid).
		wInt(1)
	}
	// ClockMHz only scales reported MFLOPS, but reports are part of the
	// cached artifact, so it is part of the identity.
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(m.ClockMHz*1e6)))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}
