package machine

import "testing"

func TestWarpValid(t *testing.T) {
	m := Warp()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper anchors: 7-cycle FPU latency, 10 MFLOPS peak (2 FPUs at 5 MHz),
	// 10 cells, register files 62 float / 64 int.
	if m.Latency(ClassFAdd) != 7 || m.Latency(ClassFMul) != 7 {
		t.Errorf("FPU latency must be 7 (5-stage pipe + 2-cycle register file)")
	}
	if m.ClockMHz != 5 || m.Cells != 10 {
		t.Errorf("clock %v MHz cells %d; want 5 MHz, 10 cells", m.ClockMHz, m.Cells)
	}
	if m.FloatRegs != 62 || m.IntRegs != 64 {
		t.Errorf("register files %d/%d, want 62/64", m.FloatRegs, m.IntRegs)
	}
	if m.Desc(ClassFAdd).Flops != 1 || m.Desc(ClassFMov).Flops != 0 {
		t.Errorf("flop accounting wrong")
	}
}

func TestScalarSingleIssue(t *testing.T) {
	m := Scalar()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every class must share one extra issue-slot resource.
	slot := Resource(len(Warp().ResourceCount))
	for c := Class(0); c < Class(NumClasses()); c++ {
		d := m.Desc(c)
		if d == nil {
			continue
		}
		found := false
		for _, u := range d.Reservation {
			if u.Resource == slot {
				found = true
			}
		}
		if !found && len(Warp().Desc(c).Reservation) > 0 {
			t.Errorf("class %v does not reserve the scalar issue slot", c)
		}
	}
}

func TestWideScales(t *testing.T) {
	for _, f := range []int{2, 4, 8} {
		m := Wide(f)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		if m.ResourceCount[ResFAdd] != f || m.ResourceCount[ResFMul] != f {
			t.Errorf("wide%d: FPU slots not scaled", f)
		}
		if m.ResourceCount[ResBranch] != 1 {
			t.Errorf("wide%d: the sequencer must stay singular", f)
		}
	}
}

func TestClassProperties(t *testing.T) {
	if !ClassFAdd.IsFloat() || ClassIAdd.IsFloat() {
		t.Error("IsFloat misclassifies")
	}
	if !ClassCJump.IsBranch() || ClassLoad.IsBranch() {
		t.Error("IsBranch misclassifies")
	}
	for c := Class(0); c < Class(NumClasses()); c++ {
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestValidateCatchesBadDesc(t *testing.T) {
	m := Warp()
	m.Ops[ClassFAdd] = &OpDesc{Latency: 0}
	if err := m.Validate(); err == nil {
		t.Error("zero latency must be rejected")
	}
	m = Warp()
	m.Ops[ClassFAdd] = &OpDesc{Latency: 1, Reservation: []ResUse{{Resource: Resource(99)}}}
	if err := m.Validate(); err == nil {
		t.Error("unknown resource must be rejected")
	}
}
