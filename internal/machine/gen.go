package machine

import (
	"fmt"
	"strings"
)

// Gen is a parameterized machine generator: one point in the design
// space explored by the sweep harness (`warpbench -sweep`, the service's
// /sweep endpoint).  The zero value of any field means "the Warp-like
// default" — Gen{} generates a single-cell machine with Warp's datapath.
//
// Lanes scales the whole datapath (SIMD-style): a machine with Lanes=2
// has twice the adders, multipliers, memory ports, ALUs, AGUs and
// register files of the 1-lane configuration.  RotatingRegs selects a
// rotating register file, which collapses modulo-variable-expansion
// unrolling to degree 1 (see Machine.RotatingRegs).
type Gen struct {
	FAdds        int  // floating adder issue slots (default 1)
	FMuls        int  // floating multiplier issue slots (default 1)
	MemPorts     int  // memory read and write ports, each (default 1)
	Lanes        int  // datapath replication factor (default 1)
	FAddLat      int  // adder-path latency in cycles (default 7)
	FMulLat      int  // multiplier-path latency in cycles (default 7)
	LoadLat      int  // load latency in cycles (default 3)
	FloatRegs    int  // float register file size per lane (default 62)
	RotatingRegs bool // rotating register file (default false: pure MVE)
}

// withDefaults fills zero fields with the Warp-like baseline.
func (g Gen) withDefaults() Gen {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&g.FAdds, 1)
	def(&g.FMuls, 1)
	def(&g.MemPorts, 1)
	def(&g.Lanes, 1)
	def(&g.FAddLat, 7)
	def(&g.FMulLat, 7)
	def(&g.LoadLat, 3)
	def(&g.FloatRegs, 62)
	return g
}

// Name returns the stable canonical name of the grid point, e.g.
// "gen:fa2,fm2,mem2,lat7/7/3,fr62,rot".  Parse round-trips it.  The lane
// segment ",x<N>" appears only for Lanes > 1, and ",rot" only for
// rotating machines, so baseline names stay short and stable.
func (g Gen) Name() string {
	g = g.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "gen:fa%d,fm%d,mem%d", g.FAdds, g.FMuls, g.MemPorts)
	if g.Lanes > 1 {
		fmt.Fprintf(&b, ",x%d", g.Lanes)
	}
	fmt.Fprintf(&b, ",lat%d/%d/%d,fr%d", g.FAddLat, g.FMulLat, g.LoadLat, g.FloatRegs)
	if g.RotatingRegs {
		b.WriteString(",rot")
	}
	return b.String()
}

// Machine instantiates the grid point as a validated target description.
// The datapath is Warp's, scaled: FAdds×Lanes adder slots, FMuls×Lanes
// multiplier slots, MemPorts×Lanes read and write ports, Lanes ALUs and
// 2×Lanes AGUs, with the requested latencies on the float/load paths.
func (g Gen) Machine() (*Machine, error) {
	g = g.withDefaults()
	for _, f := range []struct {
		name string
		v    int
	}{
		{"fa", g.FAdds}, {"fm", g.FMuls}, {"mem", g.MemPorts}, {"x", g.Lanes},
		{"lat(fadd)", g.FAddLat}, {"lat(fmul)", g.FMulLat}, {"lat(load)", g.LoadLat},
		{"fr", g.FloatRegs},
	} {
		if f.v < 1 {
			return nil, fmt.Errorf("machine gen: %s=%d (want >= 1)", f.name, f.v)
		}
	}
	const genMax = 64
	if g.FAdds > genMax || g.FMuls > genMax || g.MemPorts > genMax || g.Lanes > genMax {
		return nil, fmt.Errorf("machine gen: unit counts above %d are not supported", genMax)
	}
	if g.FAddLat > 256 || g.FMulLat > 256 || g.LoadLat > 256 {
		return nil, fmt.Errorf("machine gen: latencies above 256 cycles are not supported")
	}
	if g.FloatRegs > 4096 {
		return nil, fmt.Errorf("machine gen: fr%d above the 4096-register cap", g.FloatRegs)
	}

	m := Warp()
	m.Name = g.Name()
	m.Cells = 1
	m.RotatingRegs = g.RotatingRegs
	m.ResourceCount = make([]int, numResources)
	m.ResourceCount[ResFAdd] = g.FAdds * g.Lanes
	m.ResourceCount[ResFMul] = g.FMuls * g.Lanes
	m.ResourceCount[ResALU] = g.Lanes
	m.ResourceCount[ResMemRd] = g.MemPorts * g.Lanes
	m.ResourceCount[ResMemWr] = g.MemPorts * g.Lanes
	m.ResourceCount[ResBranch] = 1
	m.ResourceCount[ResAGU] = 2 * g.Lanes
	m.ResourceCount[ResQRecv] = 1
	m.ResourceCount[ResQSend] = 1
	m.FloatRegs = g.FloatRegs * g.Lanes
	m.IntRegs = 64 * g.Lanes

	setLat := func(classes []Class, lat int) {
		for _, c := range classes {
			d := *m.Ops[c]
			d.Latency = lat
			m.Ops[c] = &d
		}
	}
	setLat([]Class{ClassFAdd, ClassFSub, ClassFNeg, ClassFMov, ClassFConst,
		ClassFCmp, ClassF2I, ClassI2F}, g.FAddLat)
	setLat([]Class{ClassFMul, ClassFRecipSeed, ClassFRsqrtSeed}, g.FMulLat)
	setLat([]Class{ClassLoad}, g.LoadLat)

	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// DefaultGrid is the machine grid the sweep harness explores when the
// caller does not supply one: datapath width {1,2,4} × memory ports
// {1,2} × {MVE, rotating} at the Warp latencies — 12 points, each axis
// isolating one term of Lam's cost model (resource bound vs. register
// pressure vs. the price of software-only renaming).
func DefaultGrid() []Gen {
	var grid []Gen
	for _, w := range []int{1, 2, 4} {
		for _, mem := range []int{1, 2} {
			for _, rot := range []bool{false, true} {
				grid = append(grid, Gen{
					FAdds: w, FMuls: w, MemPorts: mem, RotatingRegs: rot,
				})
			}
		}
	}
	return grid
}
