// Package machine describes VLIW target machines as sets of named resources
// and operation classes with latencies and resource reservation tables.
//
// The description style follows Lam (PLDI 1988) §2.1: the basic unit of
// scheduling is a minimally indivisible sequence of micro-instructions whose
// resource usage is given by a reservation table — a list of (resource,
// cycle-offset) pairs relative to the issue cycle.  The scheduler only ever
// consults this package; nothing in the pipeliner is Warp-specific.
package machine

import (
	"fmt"
	"strings"
)

// Resource identifies one schedulable resource (an issue slot of a
// functional unit, a memory port, the sequencer's branch field, ...).
type Resource int

// The resources of the default Warp-like cell.  Machines with different
// data paths define their own subsets/counts; these constants are indices
// into Machine.Resources.
const (
	ResFAdd   Resource = iota // floating-point adder issue slot
	ResFMul                   // floating-point multiplier issue slot
	ResALU                    // integer ALU issue slot
	ResMemRd                  // data-memory read port
	ResMemWr                  // data-memory write port
	ResBranch                 // sequencer branch field
	ResAGU                    // address-generation adder
	ResQRecv                  // inter-cell input-queue port
	ResQSend                  // inter-cell output-queue port
	numResources
)

var resourceNames = [...]string{"FAdd", "FMul", "ALU", "MemRd", "MemWr", "Branch", "AGU", "QRecv", "QSend"}

// String returns the mnemonic resource name.
func (r Resource) String() string {
	if 0 <= int(r) && int(r) < len(resourceNames) {
		return resourceNames[r]
	}
	return fmt.Sprintf("Res(%d)", int(r))
}

// ResUse is one entry of a reservation table: the operation holds Resource
// for one cycle, Offset cycles after issue.
type ResUse struct {
	Resource Resource
	Offset   int
}

// OpDesc describes one operation class on a particular machine.
type OpDesc struct {
	// Latency is the number of cycles after issue at which the result
	// register becomes readable.  A consumer issued at σ(u)+Latency (or
	// later) observes the value.
	Latency int
	// Reservation lists the resource/offset pairs the operation occupies.
	Reservation []ResUse
	// Flops is the number of floating-point operations this op counts as
	// (for MFLOPS accounting): 1 for FAdd/FMul, 0 otherwise.
	Flops int
}

// Class enumerates the operation classes the IR can produce.  Classes are
// machine-independent; each Machine maps them to an OpDesc.
type Class int

// Operation classes.  FAdd/FSub/FMul/FNeg/FMin/FMax/FCmp* run on the
// floating units; the I* classes and address arithmetic run on the ALU;
// Load/Store use the memory port; CJump/Jump use the sequencer.
const (
	ClassNop Class = iota
	ClassFAdd
	ClassFSub
	ClassFMul
	ClassFNeg
	ClassFMov   // float register move (adder pass-through)
	ClassFConst // load float immediate into register
	ClassFCmp   // float compare, boolean result in int register
	ClassIAdd
	ClassISub
	ClassIMul
	ClassIMov
	ClassIConst
	ClassICmp
	ClassISelect // conditional select (ALU)
	ClassLoad
	ClassStore
	ClassCJump // conditional branch (sequencer)
	ClassJump  // unconditional branch (sequencer)
	ClassHalt
	ClassAdrAdd     // pointer/address increment on the AGU
	ClassRecv       // dequeue one word from the cell's input channel
	ClassSend       // enqueue one word on the cell's output channel
	ClassIShr       // logical shift right by an immediate (codegen only)
	ClassIAnd       // bitwise and with an immediate mask (codegen only)
	ClassFRecipSeed // table-lookup seed for 1/x (multiplier path)
	ClassFRsqrtSeed // table-lookup seed for 1/sqrt(x) (multiplier path)
	ClassF2I        // truncate float to int (adder path)
	ClassI2F        // convert int to float (adder path)
	numClasses
)

var classNames = [...]string{
	"nop", "fadd", "fsub", "fmul", "fneg", "fmov", "fconst", "fcmp",
	"iadd", "isub", "imul", "imov", "iconst", "icmp", "iselect",
	"load", "store", "cjump", "jump", "halt", "adradd",
	"recv", "send",
	"ishr", "iand",
	"frecipseed", "frsqrtseed", "f2i", "i2f",
}

// String returns the mnemonic for the class.
func (c Class) String() string {
	if 0 <= int(c) && int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// NumClasses reports how many operation classes exist.
func NumClasses() int { return int(numClasses) }

// IsFloat reports whether the class produces a floating-point value.
func (c Class) IsFloat() bool {
	switch c {
	case ClassFAdd, ClassFSub, ClassFMul, ClassFNeg, ClassFMov, ClassFConst,
		ClassFRecipSeed, ClassFRsqrtSeed, ClassI2F, ClassRecv:
		return true
	}
	return false
}

// IsBranch reports whether the class occupies the sequencer.
func (c Class) IsBranch() bool {
	return c == ClassCJump || c == ClassJump || c == ClassHalt
}

// Machine is a complete target description.
type Machine struct {
	// Name identifies the configuration in reports.
	Name string
	// ResourceCount[r] is the number of units of resource r available in
	// each instruction (usually 1 per functional-unit issue slot).
	ResourceCount []int
	// Ops maps each Class to its descriptor; a nil entry means the class
	// is unsupported on this machine.
	Ops []*OpDesc
	// FloatRegs and IntRegs are the physical register file sizes.
	FloatRegs int
	IntRegs   int
	// ClockMHz converts cycle counts to MFLOPS: MFLOPS =
	// flops * ClockMHz / cycles.
	ClockMHz float64
	// Cells is the number of identical cells in the array; homogeneous
	// programs scale MFLOPS by this factor (Lam §4.1).
	Cells int
	// RotatingRegs marks a rotating register file (Cydra-5/Itanium
	// style): the hardware renames each rotating operand by a rotating
	// register base that advances once per kernel iteration, so modulo
	// variable expansion needs no kernel unrolling (unroll degree 1) and
	// no explicit register copies.  When false (all hand-written
	// machines), overlapping lifetimes are separated purely in software
	// by MVE, as in Lam §5.
	RotatingRegs bool
}

// Desc returns the descriptor for class c, or nil if unsupported.
func (m *Machine) Desc(c Class) *OpDesc {
	if int(c) >= len(m.Ops) {
		return nil
	}
	return m.Ops[int(c)]
}

// Latency returns the result latency of class c.  Unsupported classes have
// latency 1 so that diagnostics stay finite.
func (m *Machine) Latency(c Class) int {
	if d := m.Desc(c); d != nil {
		return d.Latency
	}
	return 1
}

// Validate checks internal consistency of the description.
func (m *Machine) Validate() error {
	if len(m.ResourceCount) == 0 {
		return fmt.Errorf("machine %s: no resources", m.Name)
	}
	for r, n := range m.ResourceCount {
		if n <= 0 {
			return fmt.Errorf("machine %s: resource %v has count %d (want >= 1)", m.Name, Resource(r), n)
		}
	}
	if m.FloatRegs < 1 || m.IntRegs < 1 {
		return fmt.Errorf("machine %s: register files %d float / %d int (want >= 1 each)", m.Name, m.FloatRegs, m.IntRegs)
	}
	if m.ClockMHz <= 0 {
		return fmt.Errorf("machine %s: clock %.3f MHz (want > 0)", m.Name, m.ClockMHz)
	}
	if m.Cells < 1 {
		return fmt.Errorf("machine %s: %d cells (want >= 1)", m.Name, m.Cells)
	}
	for c := Class(0); c < numClasses; c++ {
		d := m.Desc(c)
		if d == nil {
			continue
		}
		if d.Latency < 1 {
			return fmt.Errorf("machine %s: class %v has latency %d < 1", m.Name, c, d.Latency)
		}
		for _, u := range d.Reservation {
			if int(u.Resource) >= len(m.ResourceCount) {
				return fmt.Errorf("machine %s: class %v reserves unknown resource %v", m.Name, c, u.Resource)
			}
			if u.Offset < 0 {
				return fmt.Errorf("machine %s: class %v has negative reservation offset", m.Name, c)
			}
		}
	}
	return nil
}

// String renders a short summary of the machine.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", m.Name)
	for r, n := range m.ResourceCount {
		fmt.Fprintf(&b, " %v=%d", Resource(r), n)
	}
	fmt.Fprintf(&b, " fregs=%d iregs=%d clock=%.1fMHz", m.FloatRegs, m.IntRegs, m.ClockMHz)
	if m.RotatingRegs {
		b.WriteString(" rotating")
	}
	return b.String()
}

func use(r Resource) []ResUse { return []ResUse{{Resource: r, Offset: 0}} }

// Warp returns the default Warp-like cell description.
//
// The real Warp cell (Annaratone et al. 1987) has a 5-stage pipelined
// multiplier and adder; with the 2-cycle register-file delay both take 7
// cycles to complete (Lam §1).  The cell runs at 5 MHz, so two FPUs give
// the 10 MFLOPS peak the paper quotes.  The register files hold 31+31
// float words and 64 int words; we model the two float files as one
// 62-entry file (see DESIGN.md, Substitutions).
func Warp() *Machine {
	m := &Machine{
		Name:          "warp",
		ResourceCount: []int{1, 1, 1, 1, 1, 1, 2, 1, 1},
		Ops:           make([]*OpDesc, numClasses),
		FloatRegs:     62,
		IntRegs:       64,
		ClockMHz:      5,
		Cells:         10,
	}
	m.Ops[ClassNop] = &OpDesc{Latency: 1}
	m.Ops[ClassFAdd] = &OpDesc{Latency: 7, Reservation: use(ResFAdd), Flops: 1}
	m.Ops[ClassFSub] = &OpDesc{Latency: 7, Reservation: use(ResFAdd), Flops: 1}
	m.Ops[ClassFNeg] = &OpDesc{Latency: 7, Reservation: use(ResFAdd), Flops: 0}
	m.Ops[ClassFMov] = &OpDesc{Latency: 7, Reservation: use(ResFAdd), Flops: 0}
	m.Ops[ClassFConst] = &OpDesc{Latency: 7, Reservation: use(ResFAdd), Flops: 0}
	m.Ops[ClassFMul] = &OpDesc{Latency: 7, Reservation: use(ResFMul), Flops: 1}
	m.Ops[ClassFCmp] = &OpDesc{Latency: 7, Reservation: use(ResFAdd), Flops: 0}
	m.Ops[ClassIAdd] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassISub] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassIMul] = &OpDesc{Latency: 2, Reservation: use(ResALU)}
	m.Ops[ClassIMov] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassIConst] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassICmp] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassISelect] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassLoad] = &OpDesc{Latency: 3, Reservation: use(ResMemRd)}
	m.Ops[ClassStore] = &OpDesc{Latency: 1, Reservation: use(ResMemWr)}
	m.Ops[ClassCJump] = &OpDesc{Latency: 1, Reservation: use(ResBranch)}
	m.Ops[ClassJump] = &OpDesc{Latency: 1, Reservation: use(ResBranch)}
	m.Ops[ClassHalt] = &OpDesc{Latency: 1, Reservation: use(ResBranch)}
	m.Ops[ClassAdrAdd] = &OpDesc{Latency: 1, Reservation: use(ResAGU)}
	m.Ops[ClassRecv] = &OpDesc{Latency: 2, Reservation: use(ResQRecv)}
	m.Ops[ClassSend] = &OpDesc{Latency: 1, Reservation: use(ResQSend)}
	m.Ops[ClassIShr] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassIAnd] = &OpDesc{Latency: 1, Reservation: use(ResALU)}
	m.Ops[ClassFRecipSeed] = &OpDesc{Latency: 7, Reservation: use(ResFMul), Flops: 1}
	m.Ops[ClassFRsqrtSeed] = &OpDesc{Latency: 7, Reservation: use(ResFMul), Flops: 1}
	m.Ops[ClassF2I] = &OpDesc{Latency: 7, Reservation: use(ResFAdd)}
	m.Ops[ClassI2F] = &OpDesc{Latency: 7, Reservation: use(ResFAdd)}
	return m
}

// Scalar returns a single-issue machine: every class additionally reserves
// a shared issue slot, so at most one operation issues per cycle.  Used as
// the fully sequential reference point.
func Scalar() *Machine {
	m := Warp()
	m.Name = "scalar"
	m.Cells = 1
	// One extra resource acts as the single issue slot.
	slot := Resource(len(m.ResourceCount))
	m.ResourceCount = append(m.ResourceCount, 1)
	for c := range m.Ops {
		if m.Ops[c] == nil {
			continue
		}
		d := *m.Ops[c]
		d.Reservation = append(append([]ResUse{}, d.Reservation...), ResUse{Resource: slot})
		m.Ops[c] = &d
	}
	return m
}

// Wide returns a scaled-up cell with `factor` copies of each arithmetic
// unit and memory port, used for the scalability discussion in Lam §6.
func Wide(factor int) *Machine {
	m := Warp()
	m.Name = fmt.Sprintf("wide%d", factor)
	m.Cells = 1
	for r := range m.ResourceCount {
		if Resource(r) != ResBranch && Resource(r) != ResQRecv && Resource(r) != ResQSend {
			m.ResourceCount[r] *= factor
		}
	}
	m.FloatRegs *= factor
	m.IntRegs *= factor
	return m
}
