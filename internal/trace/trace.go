// Package trace is a zero-dependency hierarchical span/counter tracer
// for the compilation and evaluation pipeline.  A nil *Tracer is the
// disabled state: every method is nil-receiver safe and allocation-free,
// so hot paths thread a tracer unconditionally and pay a single pointer
// check when tracing is off.
//
// The event model follows the Chrome trace_event format (the JSON
// consumed by chrome://tracing and Perfetto): complete events ("X") for
// spans with wall-clock duration, counter events ("C") for named
// monotonic quantities.  WriteJSON emits the standard
// {"traceEvents": [...]} object.
//
// Concurrency: a Tracer serializes its own appends with a mutex, and the
// parallel evaluation harness gives each worker its own child sink
// (Child) merged at the end (Merge), so workers never contend on one
// event slice mid-run.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Arg is one key/value annotation attached to a span or counter sample.
type Arg struct {
	Key string
	Val int64
}

// Event is one recorded trace event, timestamps in microseconds since
// the root tracer's epoch.
type Event struct {
	Name string
	Ph   byte // 'X' = complete span, 'C' = counter sample
	TS   int64
	Dur  int64
	TID  int64
	Args []Arg
}

// Tracer collects events.  Obtain one with New; nil means disabled.
type Tracer struct {
	mu     sync.Mutex
	name   string
	epoch  time.Time
	tid    int64
	nextID int64 // next child thread id (root only)
	root   *Tracer
	events []Event
}

// New returns an enabled tracer whose process name labels the trace.
func New(name string) *Tracer {
	return &Tracer{name: name, epoch: time.Now(), nextID: 1}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Child returns a new sink sharing t's epoch but with its own thread id
// and event buffer, for one worker of a parallel region.  Merge the
// child back when the worker is done.  Child of nil is nil.
func (t *Tracer) Child(name string) *Tracer {
	if t == nil {
		return nil
	}
	root := t.root
	if root == nil {
		root = t
	}
	root.mu.Lock()
	id := root.nextID
	root.nextID++
	root.mu.Unlock()
	return &Tracer{name: name, epoch: root.epoch, tid: id, root: root}
}

// Merge appends the events of each child sink into t.  The children keep
// their thread ids, so per-worker timelines stay separate in the viewer.
// Merging nil children (disabled workers) is a no-op.
func (t *Tracer) Merge(children ...*Tracer) {
	if t == nil {
		return
	}
	for _, c := range children {
		if c == nil || c == t {
			continue
		}
		c.mu.Lock()
		evs := c.events
		c.events = nil
		c.mu.Unlock()
		t.mu.Lock()
		t.events = append(t.events, evs...)
		t.mu.Unlock()
	}
}

func (t *Tracer) now() int64 { return time.Since(t.epoch).Microseconds() }

// Span is an open interval started by Begin.  A nil *Span (from a nil
// tracer) accepts Arg and End as no-ops.
type Span struct {
	t     *Tracer
	name  string
	start int64
	args  []Arg
}

// Begin opens a span; close it with End.  On a nil tracer it returns a
// nil span and allocates nothing.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.now()}
}

// Arg attaches a key/value annotation to the span; it returns the span
// so annotations chain.  Nil-safe.
func (s *Span) Arg(key string, val int64) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
	return s
}

// End closes the span and records it.  Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.now()
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: s.name, Ph: 'X', TS: s.start, Dur: end - s.start,
		TID: t.tid, Args: s.args,
	})
	t.mu.Unlock()
}

// Count records a counter sample (Chrome "C" event) with the current
// value of the named quantity.  Nil-safe, allocation-free when disabled.
func (t *Tracer) Count(name string, val int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Ph: 'C', TS: t.now(), TID: t.tid,
		Args: []Arg{{Key: name, Val: val}},
	})
	t.mu.Unlock()
}

// Events returns a copy of the recorded events (the root's own buffer;
// call Merge first to fold in child sinks).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// PhaseTotals aggregates total span wall time by span name, in
// milliseconds — the per-phase timing summary merged into the harness
// baseline JSON.  Nil tracers return nil.
func (t *Tracer) PhaseTotals() map[string]float64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	totals := map[string]float64{}
	for _, e := range t.events {
		if e.Ph == 'X' {
			totals[e.Name] += float64(e.Dur) / 1e3
		}
	}
	return totals
}

// jsonEvent is the Chrome trace_event wire form.
type jsonEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  *int64           `json:"dur,omitempty"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type jsonMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteJSON emits the trace as a Chrome trace_event JSON object
// ({"traceEvents": [...], "displayTimeUnit": "ms"}), loadable in
// chrome://tracing or Perfetto.  Events sort by timestamp so the output
// is deterministic for a given set of recorded durations.  Writing a nil
// tracer emits an empty, still-valid trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var evs []Event
	name := "softpipe"
	if t != nil {
		evs = t.Events()
		if t.name != "" {
			name = t.name
		}
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TS != evs[j].TS {
			return evs[i].TS < evs[j].TS
		}
		return evs[i].TID < evs[j].TID
	})
	out := make([]any, 0, len(evs)+1)
	out = append(out, jsonMeta{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": name},
	})
	for _, e := range evs {
		je := jsonEvent{Name: e.Name, Ph: string(e.Ph), TS: e.TS, PID: 1, TID: e.TID}
		if e.Ph == 'X' {
			d := e.Dur
			je.Dur = &d
		}
		if len(e.Args) > 0 {
			je.Args = make(map[string]int64, len(e.Args))
			for _, a := range e.Args {
				je.Args[a.Key] = a.Val
			}
		}
		out = append(out, je)
	}
	enc, err := json.MarshalIndent(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     out,
	}, "", " ")
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	enc = append(enc, '\n')
	_, err = w.Write(enc)
	return err
}
