package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// TestNilTracerZeroAllocs pins the disabled-tracer contract: every method
// on a nil tracer (and the nil span it hands out) is a no-op that
// allocates nothing, so threading a tracer through the simulator and
// scheduler hot paths is free when tracing is off.
func TestNilTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("phase")
		sp.Arg("k", 1).Arg("k2", 2)
		sp.End()
		tr.Count("ctr", 7)
		_ = tr.Enabled()
		_ = tr.Child("worker")
		tr.Merge(nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f allocs/op, want 0", allocs)
	}
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer Events() = %v, want nil", got)
	}
	if got := tr.PhaseTotals(); got != nil {
		t.Fatalf("nil tracer PhaseTotals() = %v, want nil", got)
	}
}

// TestSpanAndCounterRecording checks that spans and counters land in the
// event buffer with the right phase bytes and annotations.
func TestSpanAndCounterRecording(t *testing.T) {
	tr := New("test")
	sp := tr.Begin("compile")
	sp.Arg("instrs", 42)
	sp.End()
	tr.Count("backtracks", 3)

	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "compile" || evs[0].Ph != 'X' {
		t.Errorf("event 0 = %q/%c, want compile/X", evs[0].Name, evs[0].Ph)
	}
	if len(evs[0].Args) != 1 || evs[0].Args[0] != (Arg{Key: "instrs", Val: 42}) {
		t.Errorf("span args = %v, want [{instrs 42}]", evs[0].Args)
	}
	if evs[0].Dur < 0 || evs[0].TS < 0 {
		t.Errorf("span has negative ts/dur: %+v", evs[0])
	}
	if evs[1].Name != "backtracks" || evs[1].Ph != 'C' {
		t.Errorf("event 1 = %q/%c, want backtracks/C", evs[1].Name, evs[1].Ph)
	}
	if len(evs[1].Args) != 1 || evs[1].Args[0].Val != 3 {
		t.Errorf("counter args = %v, want value 3", evs[1].Args)
	}
}

// TestChildMerge checks the parallel-harness protocol: children get
// distinct thread ids, record independently, and Merge folds their
// events into the root while keeping the ids apart.
func TestChildMerge(t *testing.T) {
	tr := New("root")
	c1 := tr.Child("worker")
	c2 := tr.Child("worker")
	if c1.tid == c2.tid {
		t.Fatalf("children share tid %d", c1.tid)
	}
	if c1.tid == tr.tid || c2.tid == tr.tid {
		t.Fatal("child shares the root's tid")
	}

	c1.Begin("a").End()
	c2.Begin("b").End()
	c2.Count("n", 1)
	tr.Begin("root-span").End()

	if got := len(tr.Events()); got != 1 {
		t.Fatalf("root has %d events before Merge, want 1", got)
	}
	tr.Merge(c1, c2)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("root has %d events after Merge, want 4", len(evs))
	}
	tids := map[string]int64{}
	for _, e := range evs {
		tids[e.Name] = e.TID
	}
	if tids["a"] == tids["b"] {
		t.Errorf("merged events a and b share tid %d", tids["a"])
	}
	// Merge drained the children.
	if got := len(c1.Events()) + len(c2.Events()); got != 0 {
		t.Errorf("children retain %d events after Merge, want 0", got)
	}
	// Grandchildren mint ids from the root, so another child after a
	// child-of-child still gets a fresh id.
	g := c1.Child("grand")
	if g.tid == c1.tid || g.tid == c2.tid || g.tid == tr.tid {
		t.Errorf("grandchild tid %d collides", g.tid)
	}
}

// TestWriteJSONValid checks the Chrome trace_event envelope: a single
// traceEvents array, a leading process_name metadata record, phase
// strings limited to X/C/M, dur present exactly on X events, and events
// sorted by timestamp.
func TestWriteJSONValid(t *testing.T) {
	tr := New("unit")
	tr.Count("c", 1)
	sp := tr.Begin("s")
	sp.Arg("k", 9)
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   *int64          `json:"ts"`
			Dur  *int64          `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d traceEvents, want 3 (meta + counter + span)", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Errorf("first event = %q/%q, want process_name/M", doc.TraceEvents[0].Name, doc.TraceEvents[0].Ph)
	}
	var ts []int64
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
		case "X":
			if e.Dur == nil {
				t.Errorf("X event %q missing dur", e.Name)
			}
			ts = append(ts, *e.TS)
		case "C":
			if e.Dur != nil {
				t.Errorf("C event %q has dur", e.Name)
			}
			ts = append(ts, *e.TS)
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i] < ts[j] }) {
		t.Errorf("events not sorted by ts: %v", ts)
	}
	// A nil tracer still writes a valid (empty) trace.
	var nilBuf bytes.Buffer
	var nilTr *Tracer
	if err := nilTr.WriteJSON(&nilBuf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(nilBuf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer output invalid: %v", err)
	}
}

// TestPhaseTotals checks aggregation by span name and that counters are
// excluded.
func TestPhaseTotals(t *testing.T) {
	tr := New("totals")
	tr.events = []Event{
		{Name: "compile", Ph: 'X', Dur: 1500},
		{Name: "compile", Ph: 'X', Dur: 500},
		{Name: "sim.run", Ph: 'X', Dur: 250},
		{Name: "compile", Ph: 'C'}, // counter named like a phase: ignored
	}
	got := tr.PhaseTotals()
	if got["compile"] != 2.0 {
		t.Errorf("compile total = %v ms, want 2.0", got["compile"])
	}
	if got["sim.run"] != 0.25 {
		t.Errorf("sim.run total = %v ms, want 0.25", got["sim.run"])
	}
	if len(got) != 2 {
		t.Errorf("PhaseTotals has %d phases, want 2: %v", len(got), got)
	}
}
