// Package hier implements hierarchical reduction (Lam, PLDI 1988 §3):
// scheduled control constructs are reduced to pseudo-operations whose
// resource reservations and precedence constraints summarize their
// contents, so that scheduling techniques defined for basic blocks —
// list scheduling and software pipelining — apply across them.
//
// A conditional reduces to a node of length 1 + max(len(THEN), len(ELSE)):
// cycle 0 holds the fork branch, and each later cycle holds the union
// (per-resource maximum) of the two arms' reservations.  Code scheduled in
// parallel with the construct is duplicated into both emitted arms, and
// both arms are padded to the same length so that cycle-accurate timing is
// identical on either path (we keep the padding at emission, a documented
// deviation from the paper's empty-instruction elision; see DESIGN.md).
//
// The construct additionally reserves the sequencer for its whole window.
// This keeps construct windows pairwise disjoint in the steady state,
// which bounds code growth (no cross-product of overlapped branches) at
// the cost of not overlapping independent conditionals — the conservative
// end of the code-explosion trade-off the paper discusses in §5.2.
package hier

import (
	"fmt"

	"softpipe/internal/depgraph"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
	"softpipe/internal/schedule"
)

// Placed is one scheduled element of a reduced construct's arm: a simple
// operation node or a nested reduced construct, at an arm-relative cycle.
type Placed struct {
	Time int
	Node *depgraph.Node
}

// IfPayload is the emission payload of a reduced conditional.
type IfPayload struct {
	Cond ir.VReg
	// Then/Else hold the scheduled arm contents; times are relative to
	// the arm start (window cycle 1).
	Then []Placed
	Else []Placed
	// Len is the full window length including the fork cycle.
	Len int
}

// ErrLoopInside reports a construct we do not reduce (inner loops inside
// conditionals); callers fall back to unpipelined code.
var ErrLoopInside = fmt.Errorf("hier: loop nested inside conditional")

// BuildNodes converts a loop body into scheduling nodes: plain operations
// become simple nodes; conditionals are reduced recursively.  Loop
// statements are rejected (the caller reduces inner loops separately or
// falls back).
func BuildNodes(p *ir.Program, m *machine.Machine, loopID int, b *ir.Block) ([]*depgraph.Node, error) {
	var nodes []*depgraph.Node
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *ir.OpStmt:
			n, err := depgraph.NodeFromOp(m, s.Op)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		case *ir.IfStmt:
			n, err := ReduceIf(p, m, loopID, s)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, n)
		case *ir.LoopStmt:
			return nil, ErrLoopInside
		default:
			return nil, fmt.Errorf("hier: unknown statement %T", s)
		}
	}
	return nodes, nil
}

// ReduceIf schedules both arms of a conditional independently (list
// scheduling, "compacted as much as possible, with no regard to the
// initiation interval", Lam §4.1) and reduces the construct to a single
// node carrying the union of the arms' scheduling constraints.
func ReduceIf(p *ir.Program, m *machine.Machine, loopID int, s *ir.IfStmt) (*depgraph.Node, error) {
	thenPl, thenLen, err := scheduleArm(p, m, loopID, s.Then)
	if err != nil {
		return nil, err
	}
	elsePl, elseLen, err := scheduleArm(p, m, loopID, s.Else)
	if err != nil {
		return nil, err
	}
	armLen := thenLen
	if elseLen > armLen {
		armLen = elseLen
	}
	length := 1 + armLen

	n := &depgraph.Node{
		Len:     length,
		Payload: &IfPayload{Cond: s.Cond, Then: thenPl, Else: elsePl, Len: length},
	}

	// Resource reservation: the per-offset per-resource maximum of the
	// two arms, raised so the sequencer is held for the whole window
	// (this keeps construct windows pairwise disjoint; nested constructs
	// already hold the sequencer inside their own sub-windows, so a max
	// — not a sum — is what capacity requires).
	thenUse := armUsage(thenPl)
	elseUse := armUsage(elsePl)
	use := map[useKey]int{}
	for key, cnt := range unionMax(thenUse, elseUse) {
		use[useKey{key.res, 1 + key.off}] = cnt
	}
	for off := 0; off < length; off++ {
		k := useKey{machine.ResBranch, off}
		if use[k] < 1 {
			use[k] = 1
		}
	}
	keys := make([]useKey, 0, len(use))
	for k := range use {
		keys = append(keys, k)
	}
	sortUseKeys(keys)
	for _, k := range keys {
		for i := 0; i < use[k]; i++ {
			n.Reservation = append(n.Reservation, machine.ResUse{Resource: k.res, Offset: k.off})
		}
	}

	// Register accesses: the condition at cycle 0, plus the union of the
	// arms' accesses shifted past the fork cycle.  Writes are killing
	// only when both arms write the register killingly.
	reads := readsAcc{}
	addRead(reads, s.Cond, 0)
	writes := map[ir.VReg]*depgraph.RegWrite{}
	thenW := map[ir.VReg]bool{}
	elseW := map[ir.VReg]bool{}
	collectAccesses(thenPl, 1, reads, writes, thenW)
	collectAccesses(elsePl, 1, reads, writes, elseW)
	for r, w := range writes {
		w.Killing = w.Killing && thenW[r] && elseW[r]
		n.Writes = append(n.Writes, *w)
	}
	for _, rd := range reads {
		n.Reads = append(n.Reads, *rd)
	}
	sortReads(n.Reads)
	sortWrites(n.Writes)

	// Memory accesses: union of both arms (conservative).
	collectMems(thenPl, 1, n)
	collectMems(elsePl, 1, n)
	return n, nil
}

// scheduleArm builds and list-schedules the nodes of one arm; the
// returned length guarantees at least one construct-free trailing row so
// that nested windows always have a join row inside the arm.
func scheduleArm(p *ir.Program, m *machine.Machine, loopID int, b *ir.Block) ([]Placed, int, error) {
	nodes, err := BuildNodes(p, m, loopID, b)
	if err != nil {
		return nil, 0, err
	}
	if len(nodes) == 0 {
		return nil, 0, nil
	}
	g := depgraph.Build(nodes, loopID)
	r, err := schedule.List(g, m)
	if err != nil {
		return nil, 0, err
	}
	placed := make([]Placed, len(nodes))
	armLen := r.Length
	for i, nd := range nodes {
		placed[i] = Placed{Time: r.Time[i], Node: nd}
		if nd.Payload != nil && r.Time[i]+nd.Len+1 > armLen {
			armLen = r.Time[i] + nd.Len + 1
		}
	}
	return placed, armLen, nil
}

type useKey struct {
	res machine.Resource
	off int
}

func armUsage(arm []Placed) map[useKey]int {
	u := map[useKey]int{}
	for _, pl := range arm {
		for _, ru := range pl.Node.Reservation {
			u[useKey{ru.Resource, pl.Time + ru.Offset}]++
		}
	}
	return u
}

func unionMax(a, b map[useKey]int) map[useKey]int {
	u := map[useKey]int{}
	for k, v := range a {
		u[k] = v
	}
	for k, v := range b {
		if v > u[k] {
			u[k] = v
		}
	}
	return u
}

type readsAcc map[ir.VReg]*depgraph.RegRead

func addRead(acc readsAcc, r ir.VReg, at int) {
	if e, ok := acc[r]; ok {
		if at < e.First {
			e.First = at
		}
		if at > e.Last {
			e.Last = at
		}
		return
	}
	acc[r] = &depgraph.RegRead{Reg: r, First: at, Last: at}
}

// collectAccesses folds an arm's register accesses (shifted by `shift`)
// into the aggregate maps.
func collectAccesses(arm []Placed, shift int, reads readsAcc, writes map[ir.VReg]*depgraph.RegWrite, wrote map[ir.VReg]bool) {
	for _, pl := range arm {
		base := shift + pl.Time
		for _, rd := range pl.Node.Reads {
			addRead(reads, rd.Reg, base+rd.First)
			addRead(reads, rd.Reg, base+rd.Last)
		}
		for _, w := range pl.Node.Writes {
			wrote[w.Reg] = wrote[w.Reg] || w.Killing
			if e, ok := writes[w.Reg]; ok {
				if base+w.AvailFirst < e.AvailFirst {
					e.AvailFirst = base + w.AvailFirst
				}
				if base+w.AvailLast > e.AvailLast {
					e.AvailLast = base + w.AvailLast
				}
				e.Killing = e.Killing && w.Killing
			} else {
				writes[w.Reg] = &depgraph.RegWrite{
					Reg:        w.Reg,
					AvailFirst: base + w.AvailFirst,
					AvailLast:  base + w.AvailLast,
					Killing:    w.Killing,
				}
			}
		}
	}
}

func collectMems(arm []Placed, shift int, n *depgraph.Node) {
	for _, pl := range arm {
		base := shift + pl.Time
		for _, ma := range pl.Node.Mems {
			n.Mems = append(n.Mems, depgraph.MemAcc{
				Array: ma.Array,
				Aff:   ma.Aff,
				Store: ma.Store,
				First: base + ma.First,
				Last:  base + ma.Last,
			})
		}
	}
}

func sortUseKeys(ks []useKey) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && (ks[j].off < ks[j-1].off || (ks[j].off == ks[j-1].off && ks[j].res < ks[j-1].res)); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func sortReads(rs []depgraph.RegRead) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Reg < rs[j-1].Reg; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func sortWrites(ws []depgraph.RegWrite) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Reg < ws[j-1].Reg; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}
