package hier

import (
	"testing"

	"softpipe/internal/depgraph"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
)

// buildIf constructs a loop body whose single statement is a conditional
// and returns the reduced node plus the program.
func buildIf(t *testing.T, thenFn, elseFn func(b *ir.Builder, l *ir.LoopCtx, v ir.VReg)) (*depgraph.Node, *ir.Program) {
	t.Helper()
	b := ir.NewBuilder("ifred")
	b.Array("a", ir.KindFloat, 32)
	b.Array("c", ir.KindFloat, 32)
	zero := b.FConst(0)
	var node *depgraph.Node
	b.ForN(32, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		v := b.Load("a", p, ir.Aff(l.ID, 1, 0))
		cond := b.FCmp(ir.PredGT, v, zero)
		b.If(cond, func() { thenFn(b, l, v) }, func() { elseFn(b, l, v) })
	})
	var loop *ir.LoopStmt
	for _, s := range b.P.Body.Stmts {
		if l, ok := s.(*ir.LoopStmt); ok {
			loop = l
		}
	}
	var ifStmt *ir.IfStmt
	for _, s := range loop.Body.Stmts {
		if i, ok := s.(*ir.IfStmt); ok {
			ifStmt = i
		}
	}
	m := machine.Warp()
	n, err := ReduceIf(b.P, m, loop.ID, ifStmt)
	if err != nil {
		t.Fatal(err)
	}
	node = n
	return node, b.P
}

func TestReduceIfLengthAndBranch(t *testing.T) {
	n, _ := buildIf(t,
		func(b *ir.Builder, l *ir.LoopCtx, v ir.VReg) {
			x := b.FMul(v, v)
			y := b.FMul(x, v)
			q := l.Pointer(0, 0)
			b.Store("c", q, y, nil)
		},
		func(b *ir.Builder, l *ir.LoopCtx, v ir.VReg) {
			q := l.Pointer(0, 0)
			b.Store("c", q, v, nil)
		})
	// Length = 1 (fork) + max arm length; the long arm has a dependent
	// fmul chain (7+7) plus the store.
	if n.Len < 1+15 {
		t.Errorf("construct length %d too short for the 15-cycle arm", n.Len)
	}
	// The sequencer must be reserved for the whole window, exactly once
	// per offset.
	branch := map[int]int{}
	for _, u := range n.Reservation {
		if u.Resource == machine.ResBranch {
			branch[u.Offset]++
		}
	}
	for off := 0; off < n.Len; off++ {
		if branch[off] != 1 {
			t.Errorf("branch reservation at offset %d = %d, want 1", off, branch[off])
		}
	}
}

func TestReduceIfUnionResources(t *testing.T) {
	n, _ := buildIf(t,
		func(b *ir.Builder, l *ir.LoopCtx, v ir.VReg) {
			q := l.Pointer(0, 0)
			b.Store("c", q, b.FAdd(v, v), nil)
		},
		func(b *ir.Builder, l *ir.LoopCtx, v ir.VReg) {
			q := l.Pointer(0, 0)
			b.Store("c", q, b.FMul(v, v), nil)
		})
	// The union must include both an adder and a multiplier slot (one
	// each: per-offset max, not sum).
	var fadd, fmul, stores int
	for _, u := range n.Reservation {
		switch u.Resource {
		case machine.ResFAdd:
			fadd++
		case machine.ResFMul:
			fmul++
		case machine.ResMemWr:
			stores++
		}
	}
	if fadd != 1 || fmul != 1 {
		t.Errorf("arm union: fadd=%d fmul=%d, want 1 each", fadd, fmul)
	}
	if stores != 1 {
		t.Errorf("store slots = %d, want max(1,1) = 1", stores)
	}
}

func TestReduceIfKillingSemantics(t *testing.T) {
	// A register written in both arms is killing; one written in only
	// one arm is partial.
	b := ir.NewBuilder("kill")
	b.Array("a", ir.KindFloat, 8)
	zero := b.FConst(0)
	both := b.FConst(1)
	only := b.FConst(2)
	var loop *ir.LoopStmt
	b.ForN(8, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		v := b.Load("a", p, ir.Aff(l.ID, 1, 0))
		cond := b.FCmp(ir.PredGT, v, zero)
		b.If(cond, func() {
			b.FAssign(both, v)
			b.FAssign(only, v)
		}, func() {
			b.FAssign(both, zero)
		})
	})
	for _, s := range b.P.Body.Stmts {
		if l, ok := s.(*ir.LoopStmt); ok {
			loop = l
		}
	}
	var ifStmt *ir.IfStmt
	for _, s := range loop.Body.Stmts {
		if i, ok := s.(*ir.IfStmt); ok {
			ifStmt = i
		}
	}
	n, err := ReduceIf(b.P, machine.Warp(), loop.ID, ifStmt)
	if err != nil {
		t.Fatal(err)
	}
	w := map[ir.VReg]depgraph.RegWrite{}
	for _, wr := range n.Writes {
		w[wr.Reg] = wr
	}
	if !w[both].Killing {
		t.Errorf("register written in both arms must be killing")
	}
	if w[only].Killing {
		t.Errorf("register written in one arm must be partial")
	}
}

func TestBuildNodesRejectsLoops(t *testing.T) {
	b := ir.NewBuilder("nested")
	b.Array("a", ir.KindFloat, 8)
	var outer *ir.LoopStmt
	b.ForN(4, func(l *ir.LoopCtx) {
		b.ForN(4, func(inner *ir.LoopCtx) {
			p := inner.Pointer(0, 1)
			v := b.Load("a", p, nil)
			b.Store("a", p, v, nil)
		})
	})
	for _, s := range b.P.Body.Stmts {
		if l, ok := s.(*ir.LoopStmt); ok {
			outer = l
		}
	}
	if _, err := BuildNodes(b.P, machine.Warp(), outer.ID, outer.Body); err == nil {
		t.Fatal("nested loop must be rejected by BuildNodes")
	}
}

func TestNestedIfPadRule(t *testing.T) {
	// A nested construct must never end at its arm's last row (the join
	// row must exist inside the arm).
	b := ir.NewBuilder("nestpad")
	b.Array("a", ir.KindFloat, 8)
	b.Array("c", ir.KindFloat, 8)
	zero := b.FConst(0)
	var loop *ir.LoopStmt
	b.ForN(8, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		v := b.Load("a", p, ir.Aff(l.ID, 1, 0))
		c1 := b.FCmp(ir.PredGT, v, zero)
		b.If(c1, func() {
			c2 := b.FCmp(ir.PredLT, v, zero)
			b.If(c2, func() {
				q := l.Pointer(0, 0)
				b.Store("c", q, v, nil)
			}, func() {
				q := l.Pointer(0, 0)
				b.Store("c", q, zero, nil)
			})
		}, nil)
	})
	for _, s := range b.P.Body.Stmts {
		if l, ok := s.(*ir.LoopStmt); ok {
			loop = l
		}
	}
	var ifStmt *ir.IfStmt
	for _, s := range loop.Body.Stmts {
		if i, ok := s.(*ir.IfStmt); ok {
			ifStmt = i
		}
	}
	n, err := ReduceIf(b.P, machine.Warp(), loop.ID, ifStmt)
	if err != nil {
		t.Fatal(err)
	}
	pay := n.Payload.(*IfPayload)
	armLen := pay.Len - 1
	for _, pl := range pay.Then {
		if pl.Node.Payload != nil {
			if pl.Time+pl.Node.Len >= armLen {
				t.Errorf("nested window [%d,%d) must end before the arm's last row %d",
					pl.Time, pl.Time+pl.Node.Len, armLen)
			}
		}
	}
}
