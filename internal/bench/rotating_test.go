package bench

import (
	"strings"
	"testing"

	"softpipe/internal/codegen"
	"softpipe/internal/machine"
)

// TestRotatingEndToEnd is the rotating-register acceptance gate: on a
// rotating grid machine every pipelined corpus loop must collapse to
// MVE unroll 1, pass the independent object-code verifier, and simulate
// bit-identically to the IR interpreter on both engines.
func TestRotatingEndToEnd(t *testing.T) {
	ws, err := SweepWorkloads(SweepSetFull)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gen:rot", "gen:fa2,fm2,mem2,rot"} {
		m, err := machine.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		if !m.RotatingRegs {
			t.Fatalf("%s: RotatingRegs not set", name)
		}
		t.Run(name, func(t *testing.T) {
			pipelined := 0
			for _, w := range ws {
				var cycles []int64
				for _, eng := range []Engine{EngineInterp, EngineCompiled} {
					r, err := runVerified(w.Prog, m, codegen.Options{
						Mode:          codegen.ModePipelined,
						VerifyEmitted: true,
					}, eng)
					if err != nil {
						t.Fatalf("%s (%s): %v", w.Name, eng, err)
					}
					cycles = append(cycles, r.Cycles)
					for _, lr := range r.Report.Loops {
						if !lr.Pipelined {
							continue
						}
						pipelined++
						if !lr.Rotating {
							t.Errorf("%s loop %d: pipelined without the rotating schedule", w.Name, lr.LoopID)
						}
						if lr.Unroll != 1 {
							t.Errorf("%s loop %d: MVE unroll %d on a rotating machine (want 1)", w.Name, lr.LoopID, lr.Unroll)
						}
					}
				}
				if cycles[0] != cycles[1] {
					t.Errorf("%s: engines disagree on cycle count (%d vs %d)", w.Name, cycles[0], cycles[1])
				}
			}
			if pipelined == 0 {
				t.Fatal("no corpus loop pipelined on the rotating machine")
			}
		})
	}
}

// TestRotatingSchedulesMatchMVE pins the schedule-quality invariants of
// the rotating register file against pure MVE.  With ample registers
// the copy-budget machinery never engages, so toggling the register
// file must not move any initiation interval: rotation renames copies,
// it does not reschedule.  At the default file size register pressure
// legitimately separates the two (the remedies differ: MVE un-expands,
// rotating first trades interval for ring depth), but rotating needs
// strictly fewer copy registers, so it must never pipeline less, and
// any II drift on shared loops stays small.
func TestRotatingSchedulesMatchMVE(t *testing.T) {
	ws, err := SweepWorkloads(SweepSetFull)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct {
		mve, rot string
		ample    bool
	}
	for _, pr := range []pair{
		{"gen:fa2,fm2,mem2,fr512", "gen:fa2,fm2,mem2,fr512,rot", true},
		{"gen:fa2,fm2,mem2", "gen:fa2,fm2,mem2,rot", false},
	} {
		mve, err := machine.Parse(pr.mve)
		if err != nil {
			t.Fatal(err)
		}
		rot, err := machine.Parse(pr.rot)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range ws {
			a, err := run(w.Prog, mve, codegen.Options{Mode: codegen.ModePipelined}, EngineInterp)
			if err != nil {
				t.Fatal(err)
			}
			b, err := run(w.Prog, rot, codegen.Options{Mode: codegen.ModePipelined}, EngineInterp)
			if err != nil {
				t.Fatal(err)
			}
			bByID := map[int]*codegen.LoopReport{}
			for i := range b.Report.Loops {
				bByID[b.Report.Loops[i].LoopID] = &b.Report.Loops[i]
			}
			for _, la := range a.Report.Loops {
				lb := bByID[la.LoopID]
				if lb == nil {
					t.Errorf("%s %s loop %d: missing from the rotating report", pr.rot, w.Name, la.LoopID)
					continue
				}
				if la.Pipelined && !lb.Pipelined {
					t.Errorf("%s %s loop %d: pipelines under MVE but not rotating (%s)", pr.rot, w.Name, la.LoopID, lb.Reason)
					continue
				}
				if !la.Pipelined || !lb.Pipelined {
					continue
				}
				if pr.ample && la.II != lb.II {
					t.Errorf("%s %s loop %d: II %d under MVE, %d rotating with ample registers (rotation renames copies, it must not reschedule)",
						pr.rot, w.Name, la.LoopID, la.II, lb.II)
				}
				if !pr.ample && lb.II > la.II+2 {
					t.Errorf("%s %s loop %d: rotating II %d drifted past MVE II %d+2 under pressure", pr.rot, w.Name, la.LoopID, lb.II, la.II)
				}
			}
		}
	}
}

// TestSweepDefaultGridSmoke runs the sweep machinery itself over the
// default grid on the smoke corpus, verified, and checks the report
// invariants the checked-in artifact relies on.
func TestSweepDefaultGridSmoke(t *testing.T) {
	rep, err := MeasureSweep(SweepOpts{Set: SweepSetSmoke, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Machines) != len(machine.DefaultGrid()) {
		t.Fatalf("got %d grid points, want %d", len(rep.Machines), len(machine.DefaultGrid()))
	}
	fps := map[string]string{}
	for i, sm := range rep.Machines {
		if sm.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint", sm.Machine)
		}
		if prev, dup := fps[sm.Fingerprint]; dup {
			t.Errorf("fingerprint collision: %s vs %s", prev, sm.Machine)
		}
		fps[sm.Fingerprint] = sm.Machine
		if sm.Pipelined == 0 {
			t.Errorf("%s: nothing pipelined on the smoke corpus", sm.Machine)
		}
		if sm.Rotating && sm.MaxUnroll > 1 {
			t.Errorf("%s: max unroll %d on a rotating machine", sm.Machine, sm.MaxUnroll)
		}
		if j := rep.RotPartner(i); j < 0 {
			t.Errorf("%s: no rotating/MVE partner in the default grid", sm.Machine)
		}
	}
	if s := FormatSweepReport(rep); s == "" || len(s) < 100 {
		t.Fatalf("implausibly short report rendering:\n%s", s)
	}
	// The report must mention every grid point by canonical name.
	s := FormatSweepReport(rep)
	for _, g := range machine.DefaultGrid() {
		if !strings.Contains(s, g.Name()) {
			t.Errorf("rendered report missing grid point %s", g.Name())
		}
	}
}
