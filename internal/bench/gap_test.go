package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"softpipe/internal/machine"
	"softpipe/internal/workloads"
)

// update regenerates testdata/gap_golden.txt:
//
//	go test ./internal/bench/ -run TestGoldenGapReport -update
var update = flag.Bool("update", false, "rewrite testdata golden files from current output")

// gapBudget is generous so verdicts never depend on machine load: the
// corpus decision trees are tiny (tens of nodes), so the budget is pure
// slack, not expected runtime.
const gapBudget = 30 * time.Second

// checkGapInvariants asserts what every gap row must satisfy regardless
// of corpus or machine.  MeasureGap itself fails if the exact backend is
// ever worse than the heuristic, so by the time rows exist the ordering
// holds; this re-checks it anyway alongside the bound and bookkeeping
// invariants.
func checkGapInvariants(t *testing.T, rep *GapReport) {
	t.Helper()
	if len(rep.Loops) == 0 {
		t.Fatal("gap report has no pipelined loops")
	}
	for _, l := range rep.Loops {
		if l.ExactII > l.HeurII {
			t.Errorf("%s loop %d: exact II %d > heuristic II %d", l.Workload, l.Loop, l.ExactII, l.HeurII)
		}
		if l.ExactII < l.MII {
			t.Errorf("%s loop %d: exact II %d below MII %d (bound unsound)", l.Workload, l.Loop, l.ExactII, l.MII)
		}
		if l.Gap != l.HeurII-l.ExactII {
			t.Errorf("%s loop %d: gap %d != %d-%d", l.Workload, l.Loop, l.Gap, l.HeurII, l.ExactII)
		}
		if l.Proved && l.FellBack {
			t.Errorf("%s loop %d: both proved and fell back", l.Workload, l.Loop)
		}
	}
	s := rep.Summary
	if s.Loops != len(rep.Loops) {
		t.Errorf("summary loops %d != %d", s.Loops, len(rep.Loops))
	}
	if s.ExactEfficiency < s.HeurEfficiency {
		t.Errorf("exact efficiency %.3f below heuristic %.3f", s.ExactEfficiency, s.HeurEfficiency)
	}
}

// TestGapCorpusDifferential is the differential harness over the full
// corpus (every Livermore kernel plus every checked-in fuzz seed plus
// saxpy): both backends compile every workload, every emitted binary
// passes the independent verifier, every simulation matches the IR
// interpreter state (so the two backends' final states are identical),
// and the exact II is never above the heuristic II.  Short mode runs
// the smoke corpus.
func TestGapCorpusDifferential(t *testing.T) {
	set := GapSetFull
	if testing.Short() {
		set = GapSetSmoke
	}
	rep, err := MeasureGap(machine.Warp(), GapOpts{Set: set, Budget: gapBudget, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGapInvariants(t, rep)
	if !testing.Short() && rep.Summary.ProvedOptimal == 0 {
		t.Error("exact backend proved nothing on the full corpus")
	}
}

// TestGapCorpusSecondMachine repeats the differential harness on a
// machine with a different resource shape, where ResMII and the
// reservation conflicts differ from Warp's.
func TestGapCorpusSecondMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus second machine is not short")
	}
	rep, err := MeasureGap(machine.Wide(2), GapOpts{Set: GapSetFull, Budget: gapBudget, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGapInvariants(t, rep)
}

func TestGapWorkloadsUnknownSet(t *testing.T) {
	if _, err := GapWorkloads("everything"); err == nil {
		t.Fatal("unknown gap set accepted")
	}
	ws, err := GapWorkloads(GapSetSmoke)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "saxpy" || ws[1].Name != "k18-2d-hydro" {
		t.Fatalf("smoke corpus = %v, want [saxpy k18-2d-hydro]", ws)
	}
}

// TestGoldenGapReport pins the rendered gap table for two contrasting
// loops: k5 (recurrence-bound: RecMII dominates and the heuristic is
// provably optimal at the bound, gap 0) and k18 (resource-bound loops
// where MII is unachievable compactly; the exact search's stretched
// improvements are rejected by the unroll limit, so the heuristic
// schedule is kept unproved).  Regenerate with -update.
func TestGoldenGapReport(t *testing.T) {
	var ws []GapWorkload
	for _, id := range []int{5, 18} {
		for _, k := range workloads.Livermore() {
			if k.ID != id {
				continue
			}
			p, err := k.Build()
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, GapWorkload{Name: k.Name, Prog: p})
		}
	}
	if len(ws) != 2 {
		t.Fatalf("expected 2 golden workloads, got %d", len(ws))
	}
	rep, err := MeasureGapWorkloads(machine.Warp(), ws, GapOpts{Set: "golden", Budget: gapBudget, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGapInvariants(t, rep)
	got := FormatGapReport(rep)
	path := filepath.Join("testdata", "gap_golden.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("golden gap report drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
