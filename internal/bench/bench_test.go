package bench

import (
	"fmt"
	"strings"
	"testing"

	"softpipe/internal/machine"
)

func TestTable42Shape(t *testing.T) {
	m := machine.Warp()
	rows, err := Table42(m, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]Table42Row{}
	for _, r := range rows {
		byID[r.KernelID] = r
		fmt.Printf("k%-2d %-26s mflops=%6.2f eff=%4.2f speedup=%5.2f pipelined=%v\n",
			r.KernelID, r.Name, r.MFLOPS, r.Efficiency, r.Speedup, r.Pipelined)
	}
	// Shape anchors from the paper:
	// - the parallel kernels (1, 7, 12) pipeline and speed up well;
	if r := byID[12]; !r.Pipelined || r.Speedup < 3 {
		t.Errorf("k12 should pipeline with a large speedup: %+v", r)
	}
	if r := byID[7]; !r.Pipelined || r.Speedup < 3 {
		t.Errorf("k7 should pipeline with a large speedup: %+v", r)
	}
	// - recurrences (5, 11) are bound by the dependence cycle: modest
	//   MFLOPS but still real speedup from overlapping the rest;
	if r := byID[5]; r.MFLOPS > 2.0 {
		t.Errorf("k5 is a serial recurrence; MFLOPS %v too high", r.MFLOPS)
	}
	// - kernel 22 (EXP) must not pipeline tightly (the paper's compiler
	//   skipped it);
	if r := byID[22]; r.Speedup > 2.0 {
		t.Errorf("k22 should be nearly serial (EXP conditionals): %+v", r)
	}
	// - the accumulator kernel 3 is bound by the 7-cycle adder:
	//   2 flops / 7 cycles at 5 MHz = 1.43 MFLOPS.
	if r := byID[3]; r.MFLOPS > 1.6 || r.MFLOPS < 1.2 {
		t.Errorf("k3 MFLOPS %v, want ~1.43 (7-cycle accumulation recurrence)", r.MFLOPS)
	}
}

func TestTable41Shape(t *testing.T) {
	m := machine.Warp()
	rows, err := Table41(m, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table41Row{}
	for _, r := range rows {
		byName[r.Name] = r
		fmt.Printf("%-16s array=%6.1f cell=%5.2f paper=%5.1f cycles=%d\n",
			r.Name, r.ArrayMFLOPS, r.CellMFLOPS, r.PaperMFLOPS, r.Cycles)
	}
	// Regular dense kernels (matmul, conv) must beat the irregular ones
	// (warshall with its min/selects, hough with opaque addressing) —
	// the ordering the paper's table shows.
	if byName["matmul-100"].ArrayMFLOPS <= byName["warshall"].ArrayMFLOPS {
		t.Errorf("matmul (%v) should beat warshall (%v)",
			byName["matmul-100"].ArrayMFLOPS, byName["warshall"].ArrayMFLOPS)
	}
	if byName["conv3x3"].ArrayMFLOPS <= byName["hough"].ArrayMFLOPS {
		t.Errorf("conv3x3 (%v) should beat hough (%v)",
			byName["conv3x3"].ArrayMFLOPS, byName["hough"].ArrayMFLOPS)
	}
}

func TestSuiteFigures(t *testing.T) {
	m := machine.Warp()
	res, err := RunSuite(m, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 72 {
		t.Fatalf("%d programs, want 72", len(res))
	}
	var sum, condSum, noCondSum float64
	var nCond, nNoCond int
	minS, maxS := 1e9, 0.0
	for _, r := range res {
		sum += r.Speedup
		if r.Speedup < minS {
			minS = r.Speedup
		}
		if r.Speedup > maxS {
			maxS = r.Speedup
		}
		if r.HasCond {
			condSum += r.Speedup
			nCond++
		} else {
			noCondSum += r.Speedup
			nNoCond++
		}
	}
	mean := sum / float64(len(res))
	fmt.Printf("speedup mean=%.2f min=%.2f max=%.2f cond-mean=%.2f nocond-mean=%.2f\n",
		mean, minS, maxS, condSum/float64(nCond), noCondSum/float64(nNoCond))
	st := Stats(res)
	fmt.Printf("loops=%d pipelined=%d metbound=%d (%.0f%%) simple=%d simplemet=%d (%.0f%%) avgEffMissed=%.2f\n",
		st.Loops, st.Pipelined, st.MetBound,
		100*float64(st.MetBound)/float64(st.Loops),
		st.SimpleLoops, st.SimpleMet,
		100*float64(st.SimpleMet)/maxf(1, float64(st.SimpleLoops)),
		st.AvgEffOfMissed)

	// Figure 4-2 anchors: the mean speedup is around 3, and programs
	// with conditionals speed up more (they gain both pipelining and
	// cross-block compaction, Lam §4.1).
	if mean < 2 || mean > 6 {
		t.Errorf("mean speedup %.2f outside the paper's ballpark (~3)", mean)
	}
	if condSum/float64(nCond) <= noCondSum/float64(nNoCond) {
		t.Errorf("conditional programs should speed up more (cond %.2f vs %.2f)",
			condSum/float64(nCond), noCondSum/float64(nNoCond))
	}
	// §4.1: 75% of loops meet the lower bound; 93% of simple loops are
	// pipelined perfectly.  Require the same character.
	if frac := float64(st.MetBound) / float64(st.Loops); frac < 0.6 {
		t.Errorf("only %.0f%% of loops meet the MII bound (paper: 75%%)", 100*frac)
	}
	if st.SimpleLoops > 0 {
		if frac := float64(st.SimpleMet) / float64(st.SimpleLoops); frac < 0.8 {
			t.Errorf("only %.0f%% of simple loops pipeline perfectly (paper: 93%%)", 100*frac)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestHistogram(t *testing.T) {
	vals := []float64{0.5, 1.5, 1.7, 9.9, 50, -1}
	h := Histogram(vals, 1, 10)
	if len(h) != 11 {
		t.Fatalf("buckets = %d, want 11", len(h))
	}
	if h[0] != 2 { // 0.5 and the clamped -1
		t.Errorf("bucket 0 = %d, want 2", h[0])
	}
	if h[1] != 2 { // 1.5, 1.7
		t.Errorf("bucket 1 = %d, want 2", h[1])
	}
	if h[9] != 1 || h[10] != 1 { // 9.9; 50 clamps into the last bucket
		t.Errorf("tail buckets = %d,%d want 1,1", h[9], h[10])
	}
	total := 0
	for _, n := range h {
		total += n
	}
	if total != len(vals) {
		t.Errorf("histogram loses values: %d of %d", total, len(vals))
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable([]string{"name", "v"}, [][]string{{"aa", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if lines[0] != "name  v " {
		t.Errorf("header misaligned: %q", lines[0])
	}
	if lines[1] != "aa    1 " {
		t.Errorf("row misaligned: %q", lines[1])
	}
}
