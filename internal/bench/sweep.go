package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"softpipe/internal/codegen"
	"softpipe/internal/machine"
	"softpipe/internal/schedule"
	"softpipe/internal/workloads"
)

// The sweep harness compiles one corpus across a family of machines and
// reports how the schedules respond: per-loop II against its lower
// bound, the modulo-variable-expansion unroll degree, and the register
// cost of software renaming — the axes of Lam §5's hardware-support
// discussion.  Rotating-register grid points pin unroll to 1, so a
// sweep over paired {MVE, rotating} machines prices exactly what the
// rotating file buys.

// Sweep corpus set names.
const (
	SweepSetFull  = "full"  // saxpy + every Livermore kernel
	SweepSetSmoke = "smoke" // saxpy + one resource-bound Livermore kernel (CI smoke)
)

// SweepWorkloads builds the named sweep corpus ("" means full): the
// deterministic kernels only, since the sweep measures machine
// sensitivity, not scheduler robustness (the fuzz corpus stays in the
// gap report).
func SweepWorkloads(set string) ([]GapWorkload, error) {
	switch set {
	case SweepSetSmoke:
		return GapWorkloads(GapSetSmoke)
	case "", SweepSetFull:
		saxpy, err := saxpyWorkload()
		if err != nil {
			return nil, err
		}
		out := []GapWorkload{saxpy}
		for _, k := range workloads.Livermore() {
			p, err := k.Build()
			if err != nil {
				return nil, err
			}
			out = append(out, GapWorkload{Name: k.Name, Prog: p})
		}
		return out, nil
	}
	return nil, fmt.Errorf("bench: unknown sweep set %q (want %q or %q)", set, SweepSetFull, SweepSetSmoke)
}

// SweepLoop is one loop's schedule at one grid point.
type SweepLoop struct {
	Loop      int    `json:"loop"`
	Pipelined bool   `json:"pipelined"`
	Reason    string `json:"reason,omitempty"`
	II        int    `json:"ii,omitempty"`
	MII       int    `json:"mii,omitempty"`
	Unroll    int    `json:"unroll,omitempty"`
	Stages    int    `json:"stages,omitempty"`
	// CopyRegsF/I count the float/int registers modulo variable
	// expansion claimed beyond one per variable.  On a rotating machine
	// the unroll is 1 and these are the ring depths instead.
	CopyRegsF int `json:"copy_regs_f,omitempty"`
	CopyRegsI int `json:"copy_regs_i,omitempty"`
}

// SweepRow is one workload at one grid point.
type SweepRow struct {
	Workload string      `json:"workload"`
	Cycles   int64       `json:"cycles"`
	MFLOPS   float64     `json:"mflops"`
	Loops    []SweepLoop `json:"loops"`
}

// SweepMachine is one grid point with its corpus aggregate.
type SweepMachine struct {
	Machine     string `json:"machine"`
	Fingerprint string `json:"fingerprint"`
	Rotating    bool   `json:"rotating"`
	// Loops/Pipelined/AtBound count the corpus loops, those that
	// pipelined, and those scheduled at the MII lower bound.
	Loops     int `json:"loops"`
	Pipelined int `json:"pipelined"`
	AtBound   int `json:"at_bound"`
	// MaxUnroll is the largest MVE unroll degree any loop needed (1 on
	// rotating machines by construction); CopyRegsF/I sum the renaming
	// register cost over the corpus.
	MaxUnroll  int        `json:"max_unroll"`
	CopyRegsF  int        `json:"copy_regs_f"`
	CopyRegsI  int        `json:"copy_regs_i"`
	MeanMFLOPS float64    `json:"mean_mflops"`
	Rows       []SweepRow `json:"rows"`
}

// SweepReport is the artifact behind BENCH_sweep.json.
type SweepReport struct {
	Set      string         `json:"set"`
	Effort   string         `json:"effort"`
	Engine   string         `json:"engine"`
	Verified bool           `json:"verified"`
	Machines []SweepMachine `json:"machines"`
}

// SweepOpts tunes a sweep run.
type SweepOpts struct {
	// Machines lists grid-point names (machine.Parse grammar); empty
	// means machine.DefaultGrid().
	Machines []string
	// Set names the corpus (SweepSetFull or SweepSetSmoke; "" = full).
	Set string
	// Workers sizes the pool (≤ 0 means GOMAXPROCS).
	Workers int
	// Verify runs the independent object-code verifier on every compile
	// and checks every simulation against the IR interpreter.
	Verify bool
	// Effort selects the II search backend; EffortBudget bounds the
	// exact search per compile (0 = default).
	Effort       schedule.Effort
	EffortBudget time.Duration
	// Engine selects the simulator implementation ("" = interp).
	Engine Engine
}

// MeasureSweep compiles and simulates the corpus on every grid point.
// The machine×workload cells run on one shared pool; results land in
// grid order regardless of pool size.
func MeasureSweep(o SweepOpts) (*SweepReport, error) {
	names := o.Machines
	if len(names) == 0 {
		for _, g := range machine.DefaultGrid() {
			names = append(names, g.Name())
		}
	}
	ms := make([]*machine.Machine, len(names))
	for i, n := range names {
		m, err := machine.Parse(n)
		if err != nil {
			return nil, fmt.Errorf("bench: sweep machine %q: %w", n, err)
		}
		ms[i] = m
	}
	ws, err := SweepWorkloads(o.Set)
	if err != nil {
		return nil, err
	}

	rows := make([]SweepRow, len(ms)*len(ws))
	err = ForEach(context.Background(), len(rows), o.Workers, func(i int) error {
		mi, wi := i/len(ws), i%len(ws)
		row, err := sweepOne(ws[wi], ms[mi], o)
		if err != nil {
			return fmt.Errorf("bench: sweep %s on %s: %w", ws[wi].Name, ms[mi].Name, err)
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &SweepReport{
		Set:      o.Set,
		Effort:   o.Effort.String(),
		Engine:   string(o.Engine),
		Verified: o.Verify,
	}
	if rep.Set == "" {
		rep.Set = SweepSetFull
	}
	if rep.Engine == "" {
		rep.Engine = string(EngineInterp)
	}
	for mi, m := range ms {
		sm := SweepMachine{
			Machine:     m.Name,
			Fingerprint: m.Fingerprint(),
			Rotating:    m.RotatingRegs,
			Rows:        rows[mi*len(ws) : (mi+1)*len(ws)],
		}
		var mflops float64
		for _, row := range sm.Rows {
			mflops += row.MFLOPS
			for _, l := range row.Loops {
				sm.Loops++
				if !l.Pipelined {
					continue
				}
				sm.Pipelined++
				if l.II == l.MII {
					sm.AtBound++
				}
				if l.Unroll > sm.MaxUnroll {
					sm.MaxUnroll = l.Unroll
				}
				sm.CopyRegsF += l.CopyRegsF
				sm.CopyRegsI += l.CopyRegsI
			}
		}
		if len(sm.Rows) > 0 {
			sm.MeanMFLOPS = mflops / float64(len(sm.Rows))
		}
		rep.Machines = append(rep.Machines, sm)
	}
	return rep, nil
}

func sweepOne(w GapWorkload, m *machine.Machine, o SweepOpts) (*SweepRow, error) {
	runner := run
	if o.Verify {
		runner = runVerified
	}
	r, err := runner(w.Prog, m, codegen.Options{
		Mode:          codegen.ModePipelined,
		Pipeline:      pipelineOpts(o.Effort, o.EffortBudget),
		VerifyEmitted: o.Verify,
	}, o.Engine)
	if err != nil {
		return nil, err
	}
	row := &SweepRow{
		Workload: w.Name,
		Cycles:   r.Cycles,
		MFLOPS:   r.CellMFLOPS,
	}
	for _, lr := range r.Report.Loops {
		l := SweepLoop{Loop: lr.LoopID, Pipelined: lr.Pipelined}
		if lr.Pipelined {
			l.II, l.MII = lr.II, lr.MII
			l.Unroll, l.Stages = lr.Unroll, lr.Stages
			l.CopyRegsF, l.CopyRegsI = lr.CopyRegsF, lr.CopyRegsI
			if m.RotatingRegs != lr.Rotating {
				return nil, fmt.Errorf("loop %d: rotating flag %v on machine whose RotatingRegs=%v", lr.LoopID, lr.Rotating, m.RotatingRegs)
			}
			if lr.Rotating && lr.Unroll != 1 {
				return nil, fmt.Errorf("loop %d: unroll %d on a rotating machine (want 1)", lr.LoopID, lr.Unroll)
			}
		} else {
			l.Reason = lr.Reason
		}
		row.Loops = append(row.Loops, l)
	}
	return row, nil
}

// RotPartner returns the index of the machine in rep that differs from
// rep.Machines[i] only in the rotating flag, or -1.  Canonical gen
// names make this a string edit: the ",rot" suffix toggles.
func (rep *SweepReport) RotPartner(i int) int {
	name := rep.Machines[i].Machine
	var want string
	if strings.HasSuffix(name, ",rot") {
		want = strings.TrimSuffix(name, ",rot")
	} else {
		want = name + ",rot"
	}
	for j, m := range rep.Machines {
		if m.Machine == want {
			return j
		}
	}
	return -1
}

// FormatSweepReport renders the report as the fixed-width table printed
// by `warpbench -sweep`: one line per grid point, then the
// rotating-vs-MVE copy-cost pairing for every machine pair that differs
// only in the register file.
func FormatSweepReport(rep *SweepReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine sweep (%s corpus, %s effort, %s engine", rep.Set, rep.Effort, rep.Engine)
	if rep.Verified {
		b.WriteString(", verified")
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "%-40s %3s  %5s %8s %5s %5s %5s  %7s\n",
		"machine", "rot", "piped", "at-bound", "maxU", "copyF", "copyI", "MFLOPS")
	for _, m := range rep.Machines {
		rot := "-"
		if m.Rotating {
			rot = "yes"
		}
		fmt.Fprintf(&b, "%-40s %3s  %2d/%2d %8d %5d %5d %5d  %7.1f\n",
			m.Machine, rot, m.Pipelined, m.Loops, m.AtBound, m.MaxUnroll,
			m.CopyRegsF, m.CopyRegsI, m.MeanMFLOPS)
	}
	var pairs []string
	for i, m := range rep.Machines {
		if m.Rotating {
			continue
		}
		j := rep.RotPartner(i)
		if j < 0 {
			continue
		}
		r := rep.Machines[j]
		pairs = append(pairs, fmt.Sprintf("  %-40s MVE unroll<=%d, %d copy regs  ->  rot unroll %d, %d ring regs\n",
			m.Machine, m.MaxUnroll, m.CopyRegsF+m.CopyRegsI, r.MaxUnroll, r.CopyRegsF+r.CopyRegsI))
	}
	if len(pairs) > 0 {
		b.WriteString("rotating vs MVE (paired grid points):\n")
		for _, p := range pairs {
			b.WriteString(p)
		}
	}
	return b.String()
}
