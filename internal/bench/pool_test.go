package bench

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var counts [n]int32
			err := ForEach(context.Background(), n, workers, func(i int) error {
				atomic.AddInt32(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("job %d ran %d times, want 1", i, c)
				}
			}
		})
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEach(context.Background(), 50, 4, func(i int) error {
		switch i {
		case 7:
			return errA
		case 30:
			return errB
		}
		return nil
	})
	// Job 7 always dispatches before job 30 can be the only failure
	// observed: with the pool canceled at the first error, the error of
	// the lowest failing index that actually ran must win.
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("got unrelated error %v", err)
	}
	// Sequential pool: deterministic — must be exactly the first error.
	if err := ForEach(context.Background(), 50, 1, func(i int) error {
		if i == 7 {
			return errA
		}
		if i == 30 {
			return errB
		}
		return nil
	}); !errors.Is(err, errA) {
		t.Fatalf("workers=1: got %v, want errA", err)
	}
}

func TestForEachErrorCancelsRemainingJobs(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(context.Background(), 10_000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := atomic.LoadInt32(&ran); n == 10_000 {
		t.Error("cancellation did not stop dispatch (all jobs ran)")
	}
}

func TestForEachHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEach(ctx, 100, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
