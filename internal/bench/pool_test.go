package bench

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"softpipe/internal/trace"
)

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var counts [n]int32
			err := ForEach(context.Background(), n, workers, func(i int) error {
				atomic.AddInt32(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("job %d ran %d times, want 1", i, c)
				}
			}
		})
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := ForEach(context.Background(), 50, 4, func(i int) error {
		switch i {
		case 7:
			return errA
		case 30:
			return errB
		}
		return nil
	})
	// Job 7 always dispatches before job 30 can be the only failure
	// observed: with the pool canceled at the first error, the error of
	// the lowest failing index that actually ran must win.
	if err == nil {
		t.Fatal("expected an error")
	}
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("got unrelated error %v", err)
	}
	// Sequential pool: deterministic — must be exactly the first error.
	if err := ForEach(context.Background(), 50, 1, func(i int) error {
		if i == 7 {
			return errA
		}
		if i == 30 {
			return errB
		}
		return nil
	}); !errors.Is(err, errA) {
		t.Fatalf("workers=1: got %v, want errA", err)
	}
}

func TestForEachErrorCancelsRemainingJobs(t *testing.T) {
	boom := errors.New("boom")
	var ran int32
	err := ForEach(context.Background(), 10_000, 2, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if n := atomic.LoadInt32(&ran); n == 10_000 {
		t.Error("cancellation did not stop dispatch (all jobs ran)")
	}
}

func TestForEachHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEach(ctx, 100, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestForEachTracedMergesWorkerSinks checks the parallel-tracing
// protocol: every job's span lands in the root tracer after the pool
// drains, each worker records into its own sink (spans from one worker
// share a thread id distinct from the root's), and a nil tracer
// degrades to plain ForEach with nil sinks handed to fn.
func TestForEachTracedMergesWorkerSinks(t *testing.T) {
	const n = 37
	tr := trace.New("pool")
	err := ForEachTraced(context.Background(), n, 4, tr, func(i int, wt *trace.Tracer) error {
		if wt == nil {
			return fmt.Errorf("job %d got a nil sink under an enabled tracer", i)
		}
		wt.Begin(fmt.Sprintf("job-%d", i)).End()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	if len(evs) != n {
		t.Fatalf("root has %d events after merge, want %d", len(evs), n)
	}
	seen := map[string]bool{}
	for _, e := range evs {
		seen[e.Name] = true
		if e.TID == 0 {
			t.Errorf("span %s carries the root thread id; worker sinks must be distinct", e.Name)
		}
	}
	if len(seen) != n {
		t.Errorf("got %d distinct jobs, want %d", len(seen), n)
	}

	var sawNil atomic.Int32
	err = ForEachTraced(context.Background(), 5, 2, nil, func(i int, wt *trace.Tracer) error {
		if wt == nil {
			sawNil.Add(1)
		}
		wt.Begin("noop").End() // nil-safe
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawNil.Load() != 5 {
		t.Errorf("nil tracer: %d jobs saw a nil sink, want 5", sawNil.Load())
	}
}
