package bench

import (
	"strconv"
	"strings"
	"testing"

	"softpipe/internal/codegen"
	"softpipe/internal/machine"
	"softpipe/internal/schedule"
	"softpipe/internal/workloads"
)

// compileExplain compiles one Livermore kernel with the II-search
// explain report enabled, exactly as `livermore -explain` does.
func compileExplain(t *testing.T, name string) *codegen.Report {
	t.Helper()
	for _, k := range workloads.Livermore() {
		if k.Name != name {
			continue
		}
		p, err := k.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, rep, err := codegen.Compile(p, machine.Warp(), codegen.Options{
			Mode: codegen.ModePipelined, Explain: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	t.Fatalf("no kernel named %s", name)
	return nil
}

func loopExplain(t *testing.T, rep *codegen.Report, loopID int) *schedule.Explain {
	t.Helper()
	for _, lr := range rep.Loops {
		if lr.LoopID == loopID {
			if lr.Explain == nil {
				t.Fatalf("loop %d has no explain report", loopID)
			}
			return lr.Explain
		}
	}
	t.Fatalf("no loop %d in report", loopID)
	return nil
}

// TestExplainGoldenTridiagonal pins the explain report of kernel 5
// (first-order linear recurrence, Lam Table 4-2): the search floor is
// the recurrence bound, and the first candidate interval already
// schedules, so the report is a single successful attempt.
func TestExplainGoldenTridiagonal(t *testing.T) {
	rep := compileExplain(t, "k5-tridiagonal")
	exp := loopExplain(t, rep, 0)
	if exp.PreFailure != "" {
		t.Fatalf("unexpected pre-failure: %s", exp.PreFailure)
	}
	if got := exp.Bound(); got != "recurrence" {
		t.Errorf("Bound() = %q, want recurrence (x[i] depends on x[i-1])", got)
	}
	if exp.RecMII <= exp.ResMII {
		t.Errorf("RecMII %d <= ResMII %d; kernel 5 must be recurrence-bound", exp.RecMII, exp.ResMII)
	}
	if exp.Achieved != exp.MII {
		t.Errorf("Achieved %d != MII %d; the recurrence-bound loop meets its floor", exp.Achieved, exp.MII)
	}
	if len(exp.Attempts) != 1 || !exp.Attempts[0].OK || exp.Attempts[0].II != exp.MII {
		t.Errorf("attempts = %+v, want one ok attempt at II=MII", exp.Attempts)
	}
	if !strings.Contains(exp.Format(), "accepted II="+strconv.Itoa(exp.MII)+": met the lower bound") {
		t.Errorf("Format() missing acceptance line:\n%s", exp.Format())
	}
}

// TestExplainGoldenHydro2D pins the explain report of kernel 18, the
// only Table 4-2 kernel whose loops miss their MII on the Warp cell:
// both sweeps are resource-bound, and every failed candidate names a
// concrete functional-unit conflict (adder or memory read port), never
// a dependence bound.
func TestExplainGoldenHydro2D(t *testing.T) {
	rep := compileExplain(t, "k18-2d-hydro")

	// First sweep (loop 1): floor 14 from the resource bound, II=14
	// fails on the floating adder, II=15 schedules.
	exp := loopExplain(t, rep, 1)
	if got := exp.Bound(); got != "resource" {
		t.Errorf("loop 1 Bound() = %q, want resource", got)
	}
	if exp.MII != 14 || exp.Achieved != 15 {
		t.Errorf("loop 1 MII/Achieved = %d/%d, want 14/15", exp.MII, exp.Achieved)
	}
	if len(exp.Attempts) != 2 {
		t.Fatalf("loop 1: %d attempts, want 2:\n%s", len(exp.Attempts), exp.Format())
	}
	fail := exp.Attempts[0]
	if fail.II != 14 || fail.OK {
		t.Errorf("loop 1 attempt 0 = II=%d OK=%v, want II=14 FAIL", fail.II, fail.OK)
	}
	if fail.Cause.Kind != schedule.CauseResource {
		t.Fatalf("loop 1 II=14 cause = %v, want resource conflict", fail.Cause.Kind)
	}
	if fail.Cause.Resource != machine.ResFAdd {
		t.Errorf("loop 1 II=14 contended resource = %v, want FAdd", fail.Cause.Resource)
	}
	if fail.NodeDesc == "" {
		t.Error("loop 1 failure does not name the failing op")
	}

	// Third sweep (loop 3): floor 16, misses four candidates on the
	// memory read port and then the adder before settling at 20.
	exp = loopExplain(t, rep, 3)
	if exp.MII != 16 || exp.Achieved != 20 {
		t.Errorf("loop 3 MII/Achieved = %d/%d, want 16/20", exp.MII, exp.Achieved)
	}
	if got := exp.Bound(); got != "resource" {
		t.Errorf("loop 3 Bound() = %q, want resource", got)
	}
	for _, a := range exp.Attempts[:len(exp.Attempts)-1] {
		if a.OK {
			t.Errorf("loop 3 II=%d unexpectedly ok before the accepted interval", a.II)
			continue
		}
		if a.Cause.Kind != schedule.CauseResource {
			t.Errorf("loop 3 II=%d cause = %v, want resource conflict", a.II, a.Cause.Kind)
		}
		if r := a.Cause.Resource; r != machine.ResMemRd && r != machine.ResFAdd {
			t.Errorf("loop 3 II=%d contended resource = %v, want MemRd or FAdd", a.II, r)
		}
	}
	if last := exp.Attempts[len(exp.Attempts)-1]; !last.OK || last.II != 20 {
		t.Errorf("loop 3 final attempt = II=%d OK=%v, want II=20 ok", last.II, last.OK)
	}

	// The sweeps nested inside conditionals never reach the II search;
	// their reports carry the structural pre-failure instead.
	for _, id := range []int{0, 2, 4} {
		exp := loopExplain(t, rep, id)
		if !strings.Contains(exp.PreFailure, "nested inside conditional") {
			t.Errorf("loop %d PreFailure = %q, want the nested-conditional reason", id, exp.PreFailure)
		}
	}
}
