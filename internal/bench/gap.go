package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"softpipe/internal/codegen"
	"softpipe/internal/ir"
	"softpipe/internal/lang"
	"softpipe/internal/machine"
	"softpipe/internal/schedule"
	"softpipe/internal/workloads"
)

// The gap report measures how far Lam's heuristic lands from the true
// minimum initiation interval: every corpus loop is compiled twice, once
// per scheduler backend, and the per-loop IIs are compared.  MII is only
// a lower bound, so "efficiency ≥ 95%" style claims from Table 4-2
// understate the heuristic wherever MII itself is unachievable; the
// exact backend closes that measurement gap by either finding a smaller
// schedule or proving none exists.

// saxpySource mirrors testdata/saxpy.w2 so the gap runner does not
// depend on the working directory.
const saxpySource = `
program saxpy;
const n = 200;
var x, y: array [0..199] of real;
    a: real;
    i: int;
begin
  a := 3.0;
  for i := 0 to n-1 do
    y[i] := y[i] + a * x[i];
end.
`

// GapWorkload is one program of the gap corpus.
type GapWorkload struct {
	Name string
	Prog *ir.Program
}

// Gap corpus set names.
const (
	GapSetFull  = "full"  // saxpy + every Livermore kernel + the checked-in fuzz corpus
	GapSetSmoke = "smoke" // saxpy + one resource-bound Livermore kernel (CI smoke)
)

// saxpyWorkload compiles the embedded saxpy source and fills its arrays
// (shared by the gap and sweep corpora).
func saxpyWorkload() (GapWorkload, error) {
	saxpy, err := lang.Compile(saxpySource)
	if err != nil {
		return GapWorkload{}, fmt.Errorf("bench: compile saxpy: %w", err)
	}
	for _, a := range saxpy.Arrays {
		for i := 0; i < a.Size; i++ {
			a.InitF = append(a.InitF, float64(i%11))
		}
	}
	return GapWorkload{Name: "saxpy", Prog: saxpy}, nil
}

// GapWorkloads builds the named gap corpus ("" means full).
func GapWorkloads(set string) ([]GapWorkload, error) {
	saxpy, err := saxpyWorkload()
	if err != nil {
		return nil, err
	}
	out := []GapWorkload{saxpy}
	kernels := workloads.Livermore()
	switch set {
	case GapSetSmoke:
		for _, k := range kernels {
			if k.ID != 18 {
				continue
			}
			p, err := k.Build()
			if err != nil {
				return nil, err
			}
			out = append(out, GapWorkload{Name: k.Name, Prog: p})
		}
	case "", GapSetFull:
		for _, k := range kernels {
			p, err := k.Build()
			if err != nil {
				return nil, err
			}
			out = append(out, GapWorkload{Name: k.Name, Prog: p})
		}
		for _, seed := range workloads.CorpusSeeds() {
			out = append(out, GapWorkload{
				Name: fmt.Sprintf("fuzz%d", seed),
				Prog: workloads.RandomProgram(seed),
			})
		}
	default:
		return nil, fmt.Errorf("bench: unknown gap set %q (want %q or %q)", set, GapSetFull, GapSetSmoke)
	}
	return out, nil
}

// GapLoop is one pipelined loop measured under both backends.
type GapLoop struct {
	Workload string `json:"workload"`
	Loop     int    `json:"loop"`
	MII      int    `json:"mii"`
	ResMII   int    `json:"res_mii"`
	RecMII   int    `json:"rec_mii"`
	HeurII   int    `json:"heuristic_ii"`
	ExactII  int    `json:"exact_ii"`
	// Gap is HeurII − ExactII: cycles per iteration the heuristic left
	// on the table (0 when the heuristic was already optimal).
	Gap int `json:"gap"`
	// Proved means the exact backend refuted every interval below
	// ExactII, so ExactII is the true minimum, not just an improvement.
	Proved bool `json:"proved"`
	// FellBack means the exact search ran out of budget and kept the
	// heuristic schedule; the gap is then an upper bound.
	FellBack bool `json:"fell_back,omitempty"`
}

// Bound names the binding constraint of the loop's lower bound.
func (l GapLoop) Bound() string {
	if l.RecMII > l.ResMII {
		return "recurrence"
	}
	return "resource"
}

// GapSummary aggregates the corpus.
type GapSummary struct {
	Loops int `json:"loops"`
	// GapClosed counts loops where the exact backend beat the heuristic.
	GapClosed int `json:"gap_closed"`
	// ProvedOptimal counts loops whose final II carries an optimality
	// proof (including heuristic schedules the exact search confirmed).
	ProvedOptimal int `json:"proved_optimal"`
	// AboveMII counts loops proved optimal strictly above the MII lower
	// bound — cases where Table 4-2's efficiency metric undercounts.
	AboveMII int `json:"proved_above_mii"`
	FellBack int `json:"fell_back"`
	MaxGap   int `json:"max_gap"`
	TotalGap int `json:"total_gap"`
	// Mean MII/II over the corpus loops, per backend (the Table 4-2
	// efficiency metric, un-weighted).
	HeurEfficiency  float64 `json:"heuristic_efficiency"`
	ExactEfficiency float64 `json:"exact_efficiency"`
}

// GapReport is the artifact behind BENCH_gap.json.
type GapReport struct {
	Machine  string     `json:"machine"`
	Set      string     `json:"set"`
	BudgetMS int64      `json:"budget_ms"`
	Loops    []GapLoop  `json:"loops"`
	Summary  GapSummary `json:"summary"`
}

// GapOpts tunes a gap run.
type GapOpts struct {
	// Set names the corpus (GapSetFull or GapSetSmoke; "" = full).
	Set string
	// Budget bounds the exact search per compile (0 = the backend's
	// default).
	Budget time.Duration
	// Workers sizes the pool (≤ 0 means GOMAXPROCS).
	Workers int
	// Verify runs the independent object-code verifier on both compiles
	// and checks both simulations against the interpreter.
	Verify bool
}

// MeasureGap compiles the corpus under both backends and reports the
// per-loop IIs.  It fails if any exact II exceeds the heuristic II (the
// exact backend must never be worse: it keeps the heuristic schedule as
// its fallback), or if the two backends disagree on which loops
// pipeline at all.
func MeasureGap(m *machine.Machine, o GapOpts) (*GapReport, error) {
	ws, err := GapWorkloads(o.Set)
	if err != nil {
		return nil, err
	}
	return MeasureGapWorkloads(m, ws, o)
}

// MeasureGapWorkloads is MeasureGap over an explicit corpus.
func MeasureGapWorkloads(m *machine.Machine, ws []GapWorkload, o GapOpts) (*GapReport, error) {
	budget := o.Budget
	if budget == 0 {
		budget = schedule.DefaultExactBudget
	}
	perWorkload := make([][]GapLoop, len(ws))
	err := ForEach(context.Background(), len(ws), o.Workers, func(i int) error {
		rows, err := gapOne(ws[i], m, o, budget)
		if err != nil {
			return err
		}
		perWorkload[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &GapReport{
		Machine:  m.Name,
		Set:      o.Set,
		BudgetMS: budget.Milliseconds(),
	}
	if rep.Set == "" {
		rep.Set = GapSetFull
	}
	for _, rows := range perWorkload {
		rep.Loops = append(rep.Loops, rows...)
	}
	rep.Summary = summarizeGap(rep.Loops)
	return rep, nil
}

func gapOne(w GapWorkload, m *machine.Machine, o GapOpts, budget time.Duration) ([]GapLoop, error) {
	runner := run
	if o.Verify {
		runner = runVerified
	}
	heur, err := runner(w.Prog, m, codegen.Options{Mode: codegen.ModePipelined, VerifyEmitted: o.Verify}, EngineInterp)
	if err != nil {
		return nil, fmt.Errorf("bench: gap %s (heuristic): %w", w.Name, err)
	}
	exact, err := runner(w.Prog, m, codegen.Options{
		Mode:          codegen.ModePipelined,
		Pipeline:      pipelineOpts(schedule.EffortExact, budget),
		VerifyEmitted: o.Verify,
	}, EngineInterp)
	if err != nil {
		return nil, fmt.Errorf("bench: gap %s (exact): %w", w.Name, err)
	}
	if len(heur.Report.Loops) != len(exact.Report.Loops) {
		return nil, fmt.Errorf("bench: gap %s: backend loop counts differ (%d vs %d)", w.Name, len(heur.Report.Loops), len(exact.Report.Loops))
	}
	var rows []GapLoop
	for i, hl := range heur.Report.Loops {
		el := exact.Report.Loops[i]
		if hl.Pipelined && !el.Pipelined {
			// The exact backend keeps the heuristic as its fallback at
			// every level, so it must pipeline whatever the heuristic can.
			return nil, fmt.Errorf("bench: gap %s loop %d: pipelined under heuristic effort but not exact", w.Name, hl.LoopID)
		}
		if !hl.Pipelined {
			// A loop only the exact backend pipelines has no heuristic II
			// to compare against; it is a win, not a gap row.
			continue
		}
		if el.II > hl.II {
			return nil, fmt.Errorf("bench: gap %s loop %d: exact II %d exceeds heuristic II %d", w.Name, hl.LoopID, el.II, hl.II)
		}
		rows = append(rows, GapLoop{
			Workload: w.Name,
			Loop:     hl.LoopID,
			MII:      el.MII,
			ResMII:   el.ResMII,
			RecMII:   el.RecMII,
			HeurII:   hl.II,
			ExactII:  el.II,
			Gap:      hl.II - el.II,
			Proved:   el.Proved,
			FellBack: el.FellBack,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Loop < rows[j].Loop })
	return rows, nil
}

func summarizeGap(loops []GapLoop) GapSummary {
	s := GapSummary{Loops: len(loops)}
	var heurEff, exactEff float64
	for _, l := range loops {
		if l.Gap > 0 {
			s.GapClosed++
		}
		if l.Proved {
			s.ProvedOptimal++
			if l.ExactII > l.MII {
				s.AboveMII++
			}
		}
		if l.FellBack {
			s.FellBack++
		}
		if l.Gap > s.MaxGap {
			s.MaxGap = l.Gap
		}
		s.TotalGap += l.Gap
		heurEff += float64(l.MII) / float64(l.HeurII)
		exactEff += float64(l.MII) / float64(l.ExactII)
	}
	if s.Loops > 0 {
		s.HeurEfficiency = heurEff / float64(s.Loops)
		s.ExactEfficiency = exactEff / float64(s.Loops)
	}
	return s
}

// FormatGapReport renders the report as the fixed-width table printed by
// `warpbench -gap` (and pinned by the golden gap test).
func FormatGapReport(rep *GapReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "optimality gap on %s (%s corpus)\n", rep.Machine, rep.Set)
	fmt.Fprintf(&b, "%-10s %4s  %3s (res/rec)  %4s %5s  %3s  %s\n",
		"workload", "loop", "MII", "heur", "exact", "gap", "status")
	for _, l := range rep.Loops {
		status := "unproved"
		switch {
		case l.FellBack:
			status = "budget-exhausted"
		case l.Proved && l.ExactII == l.MII:
			status = "optimal, at bound"
		case l.Proved:
			status = fmt.Sprintf("optimal, %s-bound MII unachievable", l.Bound())
		}
		fmt.Fprintf(&b, "%-10s %4d  %3d (%3d/%3d)  %4d %5d  %3d  %s\n",
			l.Workload, l.Loop, l.MII, l.ResMII, l.RecMII, l.HeurII, l.ExactII, l.Gap, status)
	}
	s := rep.Summary
	fmt.Fprintf(&b, "loops %d  gap-closed %d  proved-optimal %d (above MII %d)  fell-back %d  max-gap %d  total-gap %d\n",
		s.Loops, s.GapClosed, s.ProvedOptimal, s.AboveMII, s.FellBack, s.MaxGap, s.TotalGap)
	fmt.Fprintf(&b, "mean efficiency vs MII: heuristic %.3f  exact %.3f\n", s.HeurEfficiency, s.ExactEfficiency)
	return b.String()
}
