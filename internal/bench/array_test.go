package bench

import (
	"encoding/json"
	"strings"
	"testing"

	"softpipe/internal/machine"
)

// TestMeasureArray runs the full array measurement at width 2 with
// verification on: every partitioned row must be proved equivalent to
// the single-cell reference, and at least one kernel must clear the
// 1.5× steady-state speedup the paper's array-scaling argument (§4.1)
// predicts for a balanced two-cell cut.
func TestMeasureArray(t *testing.T) {
	rep, err := MeasureArray(machine.Warp(), ArrayOpts{Widths: []int{2}, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Rows == 0 {
		t.Fatal("no kernel partitioned at width 2")
	}
	if rep.Summary.Verified != rep.Summary.Rows {
		t.Fatalf("verified %d of %d rows", rep.Summary.Verified, rep.Summary.Rows)
	}
	if rep.Summary.BestSpeedup < 1.5 {
		t.Errorf("best 2-cell speedup %.2fx (%s); want >= 1.5x",
			rep.Summary.BestSpeedup, rep.Summary.BestWorkload)
	}
	for _, r := range rep.Rows {
		if len(r.CellII) != r.Cells || len(r.StallCycles) != r.Cells || len(r.MaxInQueue) != r.Cells {
			t.Errorf("%s at %d cells: ragged per-cell stats %+v", r.Workload, r.Cells, r)
		}
		if r.ArrayCycles <= 0 {
			t.Errorf("%s at %d cells: array cycles %d", r.Workload, r.Cells, r.ArrayCycles)
		}
	}

	// The artifact must round-trip and the table must render every row.
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ArrayReport
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Summary != rep.Summary {
		t.Fatalf("summary did not round-trip: %+v vs %+v", back.Summary, rep.Summary)
	}
	table := FormatArrayReport(rep)
	for _, r := range rep.Rows {
		if !strings.Contains(table, r.Workload) {
			t.Errorf("table is missing %s:\n%s", r.Workload, table)
		}
	}
}

// TestMeasureArrayRejectsWidthOne: replicating onto one cell is the
// homogeneous path, not a partition.
func TestMeasureArrayRejectsWidthOne(t *testing.T) {
	if _, err := MeasureArray(machine.Warp(), ArrayOpts{Widths: []int{1}}); err == nil {
		t.Fatal("width 1 must be rejected")
	}
}
