package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"softpipe"
	"softpipe/internal/codegen"
	"softpipe/internal/machine"
	"softpipe/internal/workloads"
)

// The array report measures auto-partitioning across the cell array
// (internal/partition): each corpus kernel is compiled once for a single
// cell and once per requested array width, every partitioned run is
// proved equivalent to the single-cell reference, and the steady-state
// speedup is the single-cell cycle count over the array cycle count.
// Lam §4.1's claim is that a balanced partition never stalls after the
// setup skew; the per-cell stall counters make that observable.

// ArrayRow is one (kernel, width) measurement in BENCH_array.json.
type ArrayRow struct {
	Workload string `json:"workload"`
	Cells    int    `json:"cells"`
	// CellII is each cell's scheduled initiation interval; the slowest
	// cell paces the array.
	CellII []int `json:"cell_ii"`
	// EstMII is the planner's per-stage MII estimate used to balance the
	// cut (before scheduling).
	EstMII []int `json:"est_mii"`
	// CutWidths is values per iteration crossing each inter-cell queue.
	CutWidths []int `json:"cut_widths,omitempty"`
	// SingleCycles is the one-cell pipelined baseline; ArrayCycles the
	// partitioned array's global-clock run; Speedup their ratio.
	SingleCycles int64   `json:"single_cell_cycles"`
	ArrayCycles  int64   `json:"array_cycles"`
	Speedup      float64 `json:"speedup"`
	// StallCycles and MaxInQueue are per-cell runtime counters: global
	// cycles spent blocked on a queue, and the input-queue high-water mark.
	StallCycles []int64 `json:"stall_cycles"`
	MaxInQueue  []int   `json:"max_in_queue"`
	// Verified means the partition passed the provenance-equivalence
	// check against the single-cell reference on both engines.
	Verified bool `json:"verified"`
	// CapacityWarnings counts channels whose estimated in-flight words
	// approach the queue bound (legal under back-pressure).
	CapacityWarnings int `json:"capacity_warnings,omitempty"`
}

// ArraySkip records a (kernel, width) pair the planner rejected and why
// — shapes outside the partitioner's domain (conditionals, multiple
// top-level loops) or widths beyond the kernel's cuttable parallelism.
type ArraySkip struct {
	Workload string `json:"workload"`
	Cells    int    `json:"cells"`
	Reason   string `json:"reason"`
}

// ArraySummary aggregates the corpus.
type ArraySummary struct {
	Rows int `json:"rows"`
	// Partitioned counts distinct workloads with at least one
	// successfully partitioned width.
	Partitioned int `json:"workloads_partitioned"`
	Skips       int `json:"skips"`
	// Verified counts rows that passed the equivalence check (equals
	// Rows whenever verification is enabled).
	Verified     int     `json:"verified"`
	BestSpeedup  float64 `json:"best_speedup"`
	BestWorkload string  `json:"best_workload"`
	BestCells    int     `json:"best_cells"`
	MeanSpeedup  float64 `json:"mean_speedup"`
}

// ArrayReport is the artifact behind BENCH_array.json.
type ArrayReport struct {
	Machine string       `json:"machine"`
	Widths  []int        `json:"widths"`
	Engine  string       `json:"engine"`
	Rows    []ArrayRow   `json:"rows"`
	Skipped []ArraySkip  `json:"skipped,omitempty"`
	Summary ArraySummary `json:"summary"`
}

// ArrayOpts tunes an array measurement run.
type ArrayOpts struct {
	// Widths lists the array sizes to measure (nil means {2, 4}).
	Widths []int
	// Workers sizes the pool (≤ 0 means GOMAXPROCS).
	Workers int
	// Verify proves every partitioned run equivalent to the single-cell
	// reference (provenance terms + both-engine differential).
	Verify bool
	// Engine selects the simulator for the timing runs.
	Engine Engine
}

// MeasureArray partitions the corpus (saxpy + the Livermore kernels)
// across each requested array width, measures steady-state speedup over
// the single-cell pipelined schedule, and reports per-cell II, stall
// cycles and queue occupancy.  Kernels the planner rejects are recorded
// as skips, not errors; a failed equivalence check is an error.
func MeasureArray(m *machine.Machine, o ArrayOpts) (*ArrayReport, error) {
	widths := o.Widths
	if len(widths) == 0 {
		widths = []int{2, 4}
	}
	for _, n := range widths {
		if n < 2 {
			return nil, fmt.Errorf("bench: array width %d: need at least 2 cells", n)
		}
	}
	saxpy, err := saxpyWorkload()
	if err != nil {
		return nil, err
	}
	ws := []GapWorkload{saxpy}
	for _, k := range workloads.Livermore() {
		p, err := k.Build()
		if err != nil {
			return nil, err
		}
		ws = append(ws, GapWorkload{Name: k.Name, Prog: p})
	}

	type result struct {
		rows  []ArrayRow
		skips []ArraySkip
	}
	per := make([]result, len(ws))
	err = ForEach(context.Background(), len(ws), o.Workers, func(i int) error {
		rows, skips, err := arrayOne(ws[i], m, widths, o)
		if err != nil {
			return err
		}
		per[i] = result{rows, skips}
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &ArrayReport{Machine: m.Name, Widths: widths, Engine: string(engineOrDefault(o.Engine))}
	for _, r := range per {
		rep.Rows = append(rep.Rows, r.rows...)
		rep.Skipped = append(rep.Skipped, r.skips...)
	}
	rep.Summary = summarizeArray(rep.Rows, rep.Skipped)
	return rep, nil
}

func engineOrDefault(e Engine) Engine {
	if e == "" {
		return EngineInterp
	}
	return e
}

// arrayOne measures one workload: the single-cell baseline, then each
// requested width.
func arrayOne(w GapWorkload, m *machine.Machine, widths []int, o ArrayOpts) ([]ArrayRow, []ArraySkip, error) {
	single, err := run(w.Prog, m, codegen.Options{Mode: codegen.ModePipelined}, o.Engine)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: array %s (single cell): %w", w.Name, err)
	}
	var rows []ArrayRow
	var skips []ArraySkip
	for _, n := range widths {
		ao, err := softpipe.CompilePartitioned(w.Prog, softpipe.Machines(m, n), softpipe.Options{})
		if err != nil {
			skips = append(skips, ArraySkip{Workload: w.Name, Cells: n, Reason: err.Error()})
			continue
		}
		if o.Verify {
			if err := ao.Verify(nil); err != nil {
				return nil, nil, fmt.Errorf("bench: array %s at %d cells: %w", w.Name, n, err)
			}
		}
		res, err := ao.RunArray(nil, softpipe.Engine(engineOrDefault(o.Engine)))
		if err != nil {
			return nil, nil, fmt.Errorf("bench: array %s at %d cells: %w", w.Name, n, err)
		}
		row := ArrayRow{
			Workload:         w.Name,
			Cells:            n,
			CellII:           ao.CellII(),
			EstMII:           ao.Plan.EstMII,
			CutWidths:        ao.Plan.CutWidths,
			SingleCycles:     single.Cycles,
			ArrayCycles:      res.Cycles,
			Verified:         o.Verify,
			CapacityWarnings: len(ao.CapacityWarnings),
		}
		if res.Cycles > 0 {
			row.Speedup = float64(single.Cycles) / float64(res.Cycles)
		}
		for _, cs := range res.CellStats {
			row.StallCycles = append(row.StallCycles, cs.StallCycles)
			row.MaxInQueue = append(row.MaxInQueue, cs.MaxInQueue)
		}
		rows = append(rows, row)
	}
	return rows, skips, nil
}

func summarizeArray(rows []ArrayRow, skips []ArraySkip) ArraySummary {
	s := ArraySummary{Rows: len(rows), Skips: len(skips)}
	seen := map[string]bool{}
	var sum float64
	for _, r := range rows {
		if !seen[r.Workload] {
			seen[r.Workload] = true
			s.Partitioned++
		}
		if r.Verified {
			s.Verified++
		}
		sum += r.Speedup
		if r.Speedup > s.BestSpeedup {
			s.BestSpeedup = r.Speedup
			s.BestWorkload = r.Workload
			s.BestCells = r.Cells
		}
	}
	if len(rows) > 0 {
		s.MeanSpeedup = sum / float64(len(rows))
	}
	return s
}

// FormatArrayReport renders the report as the fixed-width table printed
// by `warpbench -array` and `livermore -cells`.
func FormatArrayReport(rep *ArrayReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "array partitioning on %s (%s engine), widths %v\n", rep.Machine, rep.Engine, rep.Widths)
	fmt.Fprintf(&b, "%-24s %5s  %-12s %6s %6s  %7s  %-14s %s\n",
		"workload", "cells", "cell II", "1-cell", "array", "speedup", "stall cycles", "verified")
	rows := append([]ArrayRow(nil), rep.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Cells < rows[j].Cells
	})
	for _, r := range rows {
		ver := "-"
		if r.Verified {
			ver = "yes"
		}
		fmt.Fprintf(&b, "%-24s %5d  %-12s %6d %6d  %6.2fx  %-14s %s\n",
			r.Workload, r.Cells, intList(r.CellII), r.SingleCycles, r.ArrayCycles,
			r.Speedup, int64List(r.StallCycles), ver)
	}
	for _, sk := range rep.Skipped {
		reason := sk.Reason
		if i := strings.LastIndex(reason, ": "); i >= 0 {
			reason = reason[i+2:]
		}
		fmt.Fprintf(&b, "%-24s %5d  skipped: %s\n", sk.Workload, sk.Cells, reason)
	}
	s := rep.Summary
	fmt.Fprintf(&b, "rows %d (verified %d)  workloads partitioned %d  skips %d  best %.2fx (%s at %d cells)  mean %.2fx\n",
		s.Rows, s.Verified, s.Partitioned, s.Skips, s.BestSpeedup, s.BestWorkload, s.BestCells, s.MeanSpeedup)
	return b.String()
}

func intList(v []int) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, "/")
}

func int64List(v []int64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, "/")
}
