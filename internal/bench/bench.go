// Package bench regenerates the paper's evaluation artifacts: Table 4-1
// (application MFLOPS on the array), Table 4-2 (Livermore loops on one
// cell: MFLOPS, efficiency lower bound, speedup), Figure 4-1 (MFLOPS
// histogram over the program population) and Figure 4-2 (speedup over
// locally compacted code), plus the §4.1 population statistics.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"softpipe/internal/codegen"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
	"softpipe/internal/pipeline"
	"softpipe/internal/schedule"
	"softpipe/internal/sim"
	"softpipe/internal/sim/compiled"
	"softpipe/internal/trace"
	"softpipe/internal/vliw"
	"softpipe/internal/workloads"
)

// Engine selects the simulator implementation for a measurement run:
// the reference interpreter or the compiled-closure engine.  Both are
// bit-identical on observable state; they differ only in host-side
// simulation speed, so tables and figures are engine-invariant.
type Engine string

// Available engines ("" means interp).
const (
	EngineInterp   Engine = "interp"
	EngineCompiled Engine = "compiled"
)

// ParseEngine maps a -engine flag value to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", string(EngineInterp):
		return EngineInterp, nil
	case string(EngineCompiled):
		return EngineCompiled, nil
	}
	return "", fmt.Errorf("bench: unknown engine %q (want %q or %q)", s, EngineInterp, EngineCompiled)
}

// simulate dispatches one program run to the selected engine.
func simulate(prog *vliw.Program, m *machine.Machine, eng Engine) (*ir.State, sim.Stats, error) {
	if eng == EngineCompiled {
		return compiled.Run(prog, m)
	}
	return sim.Run(prog, m)
}

// RunResult is one compiled-and-simulated execution.
type RunResult struct {
	Name   string
	Cycles int64
	Flops  int64
	// CellMFLOPS is the single-cell rate; ArrayMFLOPS scales by the
	// machine's homogeneous cell count (Lam §4.1).
	CellMFLOPS  float64
	ArrayMFLOPS float64
	Report      *codegen.Report
	State       *ir.State
}

// Run compiles p in the given mode and simulates it on the interpreter.
func Run(p *ir.Program, m *machine.Machine, mode codegen.Mode) (*RunResult, error) {
	return run(p, m, codegen.Options{Mode: mode}, EngineInterp)
}

func run(p *ir.Program, m *machine.Machine, opts codegen.Options, eng Engine) (*RunResult, error) {
	sp := opts.Tracer.Begin("compile")
	prog, rep, err := codegen.Compile(p, m, opts)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("bench: compile %s: %w", p.Name, err)
	}
	sp = opts.Tracer.Begin("sim.run")
	st, stats, err := simulate(prog, m, eng)
	sp.Arg("cycles", stats.Cycles).End()
	if err != nil {
		return nil, fmt.Errorf("bench: simulate %s: %w", p.Name, err)
	}
	return &RunResult{
		Name:        p.Name,
		Cycles:      stats.Cycles,
		Flops:       stats.Flops,
		CellMFLOPS:  stats.MFLOPS(m, 1),
		ArrayMFLOPS: stats.MFLOPS(m, m.Cells),
		Report:      rep,
		State:       st,
	}, nil
}

// RunVerified is Run with the independent emitted-code verifier
// (internal/verify) enabled at compile time, plus a differential check
// of the simulated final state against the IR interpreter.
func RunVerified(p *ir.Program, m *machine.Machine, mode codegen.Mode) (*RunResult, error) {
	return runVerified(p, m, codegen.Options{Mode: mode, VerifyEmitted: true}, EngineInterp)
}

func runVerified(p *ir.Program, m *machine.Machine, opts codegen.Options, eng Engine) (*RunResult, error) {
	want, err := ir.Run(p)
	if err != nil {
		return nil, fmt.Errorf("bench: interpret %s: %w", p.Name, err)
	}
	r, err := run(p, m, opts, eng)
	if err != nil {
		return nil, err
	}
	if d := want.Diff(r.State); d != "" {
		return nil, fmt.Errorf("bench: %s: simulated state diverges from interpreter: %s", p.Name, d)
	}
	return r, nil
}

// Table42Row is one Livermore kernel measurement (Lam Table 4-2).
type Table42Row struct {
	KernelID int
	Name     string
	// MFLOPS is the single-cell rate of the pipelined binary.
	MFLOPS float64
	// Efficiency is the lower bound MII/achieved-II, weighted across the
	// kernel's loops by their estimated execution share; 1.0 means every
	// pipelined loop met the bound (Table 4-2, third column).
	Efficiency float64
	// Speedup is unpipelined cycles / pipelined cycles (fourth column).
	Speedup   float64
	Pipelined bool // any loop pipelined
	Note      string
	// Report is the pipelined compilation's per-loop report (with
	// explain data when Table42Opts.Explain was set).
	Report *codegen.Report
}

// Table42Opts tunes a Table 4-2 run beyond the mode flags.
type Table42Opts struct {
	// Verify enables the independent object-code verifier plus the
	// differential interpreter check on every run.
	Verify bool
	// Workers sizes the pool (≤ 0 means GOMAXPROCS).
	Workers int
	// Explain records the II-search explain report per loop.
	Explain bool
	// Tracer receives per-phase spans (one sink per pool worker, merged
	// at the end); nil traces nothing.
	Tracer *trace.Tracer
	// Engine selects the simulator implementation ("" = interp).  Rows
	// are engine-invariant; the compiled engine only changes host-side
	// wall clock.
	Engine Engine
	// Effort selects the II search backend (heuristic or exact); see
	// schedule.Effort.  EffortBudget bounds the exact search per compile
	// (0 means the built-in default).
	Effort       schedule.Effort
	EffortBudget time.Duration
}

// pipelineOpts renders effort settings as scheduler options.
func pipelineOpts(eff schedule.Effort, budget time.Duration) pipeline.Options {
	return pipeline.Options{Effort: eff, SchedBudget: budget}
}

// Table42 reproduces Table 4-2 on machine m (one cell).  Kernels
// compile and simulate on a pool of `workers` goroutines (≤ 0 means
// GOMAXPROCS); results land in kernel order regardless of the pool size,
// so parallel and sequential runs are byte-identical.
func Table42(m *machine.Machine, verify bool, workers int) ([]Table42Row, error) {
	return Table42With(m, Table42Opts{Verify: verify, Workers: workers})
}

// Table42With is Table42 with explain/trace instrumentation.
func Table42With(m *machine.Machine, o Table42Opts) ([]Table42Row, error) {
	kernels := workloads.Livermore()
	rows := make([]Table42Row, len(kernels))
	err := ForEachTraced(context.Background(), len(kernels), o.Workers, o.Tracer, func(i int, t *trace.Tracer) error {
		row, err := runKernel42(kernels[i], m, o, t)
		if err != nil {
			return err
		}
		rows[i] = *row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func runKernel42(k *workloads.Kernel, m *machine.Machine, o Table42Opts, t *trace.Tracer) (*Table42Row, error) {
	p, err := k.Build()
	if err != nil {
		return nil, err
	}
	runner := run
	if o.Verify {
		runner = runVerified
	}
	job := t.Begin("kernel." + k.Name)
	defer job.End()
	pipe, err := runner(p, m, codegen.Options{Mode: codegen.ModePipelined, Pipeline: pipelineOpts(o.Effort, o.EffortBudget), VerifyEmitted: o.Verify, Explain: o.Explain, Tracer: t}, o.Engine)
	if err != nil {
		return nil, err
	}
	p2, err := k.Build()
	if err != nil {
		return nil, err
	}
	base, err := runner(p2, m, codegen.Options{Mode: codegen.ModeUnpipelined, VerifyEmitted: o.Verify, Tracer: t}, o.Engine)
	if err != nil {
		return nil, err
	}
	row := &Table42Row{
		KernelID:   k.ID,
		Name:       k.Name,
		MFLOPS:     pipe.CellMFLOPS,
		Efficiency: WeightedEfficiency(pipe.Report),
		Speedup:    float64(base.Cycles) / float64(pipe.Cycles),
		Note:       k.Note,
		Report:     pipe.Report,
	}
	for _, lr := range pipe.Report.Loops {
		if lr.Pipelined {
			row.Pipelined = true
		}
	}
	return row, nil
}

// WeightedEfficiency is the Table 4-2 efficiency lower bound: per loop
// MII/achieved-II, weighted by the loop's estimated execution time
// (trip count × II), with unpipelined loops counting as efficiency 1
// against their own length (the paper weighs kernels with multiple loops
// by execution time).
func WeightedEfficiency(rep *codegen.Report) float64 {
	var wsum, esum float64
	for _, lr := range rep.Loops {
		if lr.II <= 0 {
			continue
		}
		trip := float64(lr.TripCount)
		if trip < 0 {
			trip = 1
		}
		w := trip * float64(lr.II)
		eff := 1.0
		if lr.Pipelined && lr.II > 0 && lr.MII > 0 {
			eff = float64(lr.MII) / float64(lr.II)
		}
		wsum += w
		esum += w * eff
	}
	if wsum == 0 {
		return 1
	}
	return esum / wsum
}

// Table41Row is one application measurement (Lam Table 4-1).
type Table41Row struct {
	Name        string
	ArrayMFLOPS float64
	CellMFLOPS  float64
	PaperMFLOPS float64
	Cycles      int64
}

// Table41 reproduces Table 4-1.  Single-cell kernels scale by the cell
// count (the §4.1 homogeneous rule); the systolic matmul runs on the
// actual simulated array.  Applications fan out over `workers`
// goroutines (≤ 0 means GOMAXPROCS) with the row order fixed.
func Table41(m *machine.Machine, verify bool, workers int) ([]Table41Row, error) {
	return Table41Engine(m, verify, workers, EngineInterp)
}

// Table41Engine is Table41 on the selected simulator engine (the
// systolic matmul row always runs on the interpreter array).
func Table41Engine(m *machine.Machine, verify bool, workers int, eng Engine) ([]Table41Row, error) {
	return Table41With(m, SuiteOpts{Verify: verify, Workers: workers, Engine: eng})
}

// SuiteOpts tunes Table41With and RunSuiteWith beyond the mode flags.
type SuiteOpts struct {
	Verify  bool
	Workers int
	Tracer  *trace.Tracer
	Engine  Engine
	// Effort/EffortBudget select and bound the II search backend.
	Effort       schedule.Effort
	EffortBudget time.Duration
}

// Table41With is Table41Engine with the full option set.
func Table41With(m *machine.Machine, o SuiteOpts) ([]Table41Row, error) {
	verify, workers, eng := o.Verify, o.Workers, o.Engine
	apps := workloads.Apps()
	rows := make([]Table41Row, len(apps)+1)
	runner := func(p *ir.Program, m *machine.Machine, mode codegen.Mode) (*RunResult, error) {
		opts := codegen.Options{Mode: mode, Pipeline: pipelineOpts(o.Effort, o.EffortBudget), VerifyEmitted: verify}
		if verify {
			return runVerified(p, m, opts, eng)
		}
		opts.VerifyEmitted = false
		return run(p, m, opts, eng)
	}
	err := ForEach(context.Background(), len(apps)+1, workers, func(i int) error {
		if i == 0 {
			sys, err := SystolicMatmulRow(m, 100, m.Cells)
			if err != nil {
				return err
			}
			rows[0] = sys
			return nil
		}
		app := apps[i-1]
		p, err := app.Build()
		if err != nil {
			return err
		}
		r, err := runner(p, m, codegen.ModePipelined)
		if err != nil {
			return err
		}
		rows[i] = Table41Row{
			Name:        app.Name,
			ArrayMFLOPS: r.ArrayMFLOPS,
			CellMFLOPS:  r.CellMFLOPS,
			PaperMFLOPS: app.PaperMFLOPS,
			Cycles:      r.Cycles,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// SystolicMatmulRow measures the paper's real matmul: C = A·B streamed
// through the full array (Table 4-1's 79.4 MFLOPS entry).
func SystolicMatmulRow(m *machine.Machine, n, cells int) (Table41Row, error) {
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		bm[i] = float64(i%5)*0.5 - 1
	}
	got, st, _, err := workloads.SystolicMatmul(m, n, cells, a, bm)
	if err != nil {
		return Table41Row{}, err
	}
	// Spot-check a few entries against the host product.
	for _, idx := range []int{0, n + 1, n*n - 1} {
		i, j := idx/n, idx%n
		want := 0.0
		for k := 0; k < n; k++ {
			want += a[i*n+k] * bm[k*n+j]
		}
		if got[idx] != want {
			return Table41Row{}, fmt.Errorf("bench: systolic matmul wrong at [%d][%d]", i, j)
		}
	}
	return Table41Row{
		Name:        fmt.Sprintf("matmul-systolic-%dx%d", n, n),
		ArrayMFLOPS: st.MFLOPS(m, 1),
		CellMFLOPS:  st.MFLOPS(m, 1) / float64(cells),
		PaperMFLOPS: 79.4,
		Cycles:      st.Cycles,
	}, nil
}

// SuiteResult holds the per-program outcomes behind Figures 4-1 and 4-2.
type SuiteResult struct {
	Name        string
	HasCond     bool
	ArrayMFLOPS float64
	Speedup     float64
	Report      *codegen.Report
}

// RunSuite measures the synthetic population in both modes.  One job
// covers both compilations of a program (pipelined and the unpipelined
// baseline share sp.Prog), fanned out over `workers` goroutines (≤ 0
// means GOMAXPROCS); result order is the suite order either way.
func RunSuite(m *machine.Machine, verify bool, workers int) ([]SuiteResult, error) {
	return RunSuiteTraced(m, verify, workers, nil)
}

// RunSuiteTraced is RunSuite recording per-phase spans into tr (one
// trace sink per pool worker, merged at the end); nil tr traces nothing.
func RunSuiteTraced(m *machine.Machine, verify bool, workers int, tr *trace.Tracer) ([]SuiteResult, error) {
	return RunSuiteEngine(m, verify, workers, tr, EngineInterp)
}

// RunSuiteEngine is RunSuiteTraced on the selected simulator engine.
func RunSuiteEngine(m *machine.Machine, verify bool, workers int, tr *trace.Tracer, eng Engine) ([]SuiteResult, error) {
	return RunSuiteWith(m, SuiteOpts{Verify: verify, Workers: workers, Tracer: tr, Engine: eng})
}

// RunSuiteWith is RunSuiteEngine with the full option set.
func RunSuiteWith(m *machine.Machine, o SuiteOpts) ([]SuiteResult, error) {
	verify, workers, tr, eng := o.Verify, o.Workers, o.Tracer, o.Engine
	progs := workloads.Suite()
	out := make([]SuiteResult, len(progs))
	err := ForEachTraced(context.Background(), len(progs), workers, tr, func(i int, t *trace.Tracer) error {
		sp := progs[i]
		runner := run
		if verify {
			runner = runVerified
		}
		job := t.Begin("suite." + sp.Name)
		pipe, err := runner(sp.Prog, m, codegen.Options{Mode: codegen.ModePipelined, Pipeline: pipelineOpts(o.Effort, o.EffortBudget), VerifyEmitted: verify, Tracer: t}, eng)
		if err != nil {
			job.End()
			return err
		}
		base, err := runner(sp.Prog, m, codegen.Options{Mode: codegen.ModeUnpipelined, VerifyEmitted: verify, Tracer: t}, eng)
		job.End()
		if err != nil {
			return err
		}
		out[i] = SuiteResult{
			Name:        sp.Name,
			HasCond:     sp.HasCond,
			ArrayMFLOPS: pipe.ArrayMFLOPS,
			Speedup:     float64(base.Cycles) / float64(pipe.Cycles),
			Report:      pipe.Report,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Histogram buckets values for the figures.
func Histogram(values []float64, width float64, max float64) []int {
	n := int(max/width) + 1
	h := make([]int, n)
	for _, v := range values {
		b := int(v / width)
		if b >= n {
			b = n - 1
		}
		if b < 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

// PopulationStats aggregates the §4.1 loop statistics over a set of
// compilation reports: the fraction of loops scheduled at the MII lower
// bound, and the fraction of conditional/recurrence-free loops pipelined
// perfectly (the paper reports 75% and 93%).
type PopulationStats struct {
	Loops          int
	Pipelined      int
	MetBound       int
	SimpleLoops    int // no conditionals, no nontrivial recurrences
	SimpleMet      int
	AvgEffOfMissed float64 // paper: 75% average efficiency for the rest
}

// Stats computes the population statistics.
func Stats(results []SuiteResult) PopulationStats {
	var st PopulationStats
	var missSum float64
	var missN int
	for _, r := range results {
		for _, lr := range r.Report.Loops {
			st.Loops++
			if lr.Pipelined {
				st.Pipelined++
			}
			if lr.Pipelined && lr.MetLower {
				st.MetBound++
			}
			simple := !lr.HasCond && !lr.HasRecur
			if simple {
				st.SimpleLoops++
				if lr.Pipelined && lr.MetLower {
					st.SimpleMet++
				}
			}
			if lr.Pipelined && !lr.MetLower && lr.II > 0 {
				missSum += float64(lr.MII) / float64(lr.II)
				missN++
			}
		}
	}
	if missN > 0 {
		st.AvgEffOfMissed = missSum / float64(missN)
	}
	return st
}

// FormatTable renders rows of strings with aligned columns.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
