package bench

import (
	"fmt"
	"testing"

	"softpipe/internal/codegen"
	"softpipe/internal/machine"
	"softpipe/internal/workloads"
)

func TestDbgK18Rep(t *testing.T) {
	m := machine.Warp()
	for _, k := range workloads.Livermore() {
		if k.ID != 18 {
			continue
		}
		p, _ := k.Build()
		_, rep, err := codegen.Compile(p, m, codegen.Options{Mode: codegen.ModePipelined})
		if err != nil {
			t.Fatal(err)
		}
		for _, lr := range rep.Loops {
			fmt.Printf("loop %d: pipe=%v II=%d MII=%d res=%d rec=%d unroll=%d stages=%d reason=%q\n",
				lr.LoopID, lr.Pipelined, lr.II, lr.MII, lr.ResMII, lr.RecMII, lr.Unroll, lr.Stages, lr.Reason)
		}
	}
}
