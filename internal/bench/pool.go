package bench

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0) … fn(n-1) on a bounded pool of worker goroutines
// and waits for them.  workers ≤ 0 sizes the pool to
// runtime.GOMAXPROCS(0); workers == 1 degenerates to a sequential loop
// on the calling goroutine's clock, which keeps single-core behavior
// identical to the historical code path.
//
// Jobs must be independent: callers get determinism by writing job i's
// result into slot i of a pre-sized slice, never by sharing accumulators.
// On failure the first error by job index is returned and the context
// derived for the pool is canceled, so in-flight workers finish their
// current job and undispatched jobs never start.  A canceled parent ctx
// stops dispatch the same way and its error is returned.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = -1
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
