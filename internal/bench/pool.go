package bench

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"softpipe/internal/trace"
)

// ForEach runs fn(0) … fn(n-1) on a bounded pool of worker goroutines
// and waits for them.  workers ≤ 0 sizes the pool to
// runtime.GOMAXPROCS(0); workers == 1 degenerates to a sequential loop
// on the calling goroutine's clock, which keeps single-core behavior
// identical to the historical code path.
//
// Jobs must be independent: callers get determinism by writing job i's
// result into slot i of a pre-sized slice, never by sharing accumulators.
// On failure the first error by job index is returned and the context
// derived for the pool is canceled, so in-flight workers finish their
// current job and undispatched jobs never start.  A canceled parent ctx
// stops dispatch the same way and its error is returned.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	return forEachWorker(ctx, n, workers, func(_, i int) error { return fn(i) })
}

// ForEachTraced is ForEach with per-worker trace sinks: each worker
// goroutine records into its own child of tr (one sink per worker, no
// cross-worker interleaving within a sink) and the children are merged
// back into tr after the pool drains.  A nil tr degenerates to ForEach
// with nil tracers handed to fn.
func ForEachTraced(ctx context.Context, n, workers int, tr *trace.Tracer, fn func(i int, t *trace.Tracer) error) error {
	if tr == nil {
		return forEachWorker(ctx, n, workers, func(_, i int) error { return fn(i, nil) })
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n > 0 && workers > n {
		workers = n
	}
	sinks := make([]*trace.Tracer, workers)
	for w := range sinks {
		sinks[w] = tr.Child("worker")
	}
	err := forEachWorker(ctx, n, workers, func(w, i int) error {
		return fn(i, sinks[w])
	})
	tr.Merge(sinks...)
	return err
}

// forEachWorker is the shared pool: fn receives the worker index (stable
// per goroutine) alongside the job index.
func forEachWorker(ctx context.Context, n, workers int, fn func(worker, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		firstIdx = -1
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					mu.Lock()
					if firstIdx == -1 || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
