package pipeline

import (
	"errors"
	"testing"

	"softpipe/internal/depgraph"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
)

// TestPlanLoopMissingResource checks the regression for the
// resource-MII division by zero: pipelining a loop whose ops reserve a
// resource the target machine has zero units of fails with a structured
// *depgraph.MissingResourceError instead of panicking, both on the
// body's own reservations (FMul) and on the pipeliner's implicit
// loop-back branch reservation (Branch).
func TestPlanLoopMissingResource(t *testing.T) {
	full := machine.Warp()
	b := ir.NewBuilder("scale")
	b.Array("x", ir.KindFloat, 64)
	b.Array("y", ir.KindFloat, 64)
	av := b.FConst(2.0)
	b.ForN(64, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		q := l.Pointer(0, 1)
		v := b.Load("x", p, ir.Aff(l.ID, 1, 0))
		b.Store("y", q, b.FMul(av, v), ir.Aff(l.ID, 1, 0))
	})
	nodes, loopID := innerNodes(t, b.P, full)

	for _, tc := range []struct {
		name string
		res  machine.Resource
	}{
		{"body reservation", machine.ResFMul},
		{"implicit branch reservation", machine.ResBranch},
	} {
		m := machine.Warp()
		m.Name = "warp-degraded"
		counts := append([]int(nil), m.ResourceCount...)
		counts[tc.res] = 0
		m.ResourceCount = counts

		_, err := PlanLoop(nodes, loopID, m, Options{})
		if err == nil {
			t.Fatalf("%s: PlanLoop accepted a machine with 0 %v units", tc.name, tc.res)
		}
		var mre *depgraph.MissingResourceError
		if !errors.As(err, &mre) {
			t.Fatalf("%s: error %T (%v) is not a *depgraph.MissingResourceError", tc.name, err, err)
		}
		if mre.Resource != tc.res {
			t.Errorf("%s: missing resource = %v, want %v", tc.name, mre.Resource, tc.res)
		}
	}
}
