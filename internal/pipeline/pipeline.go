// Package pipeline is the heart of the reproduction: given the dependence
// nodes of one loop body it computes the minimum initiation interval,
// runs the iterative modulo scheduler, applies modulo variable expansion
// (Lam §2.3) and packages everything the code generator needs to emit the
// prolog, (unrolled) steady state, epilog and live-out fix-ups.
package pipeline

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"softpipe/internal/depgraph"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
	"softpipe/internal/schedule"
	"softpipe/internal/trace"
)

// Policy selects how modulo variable expansion trades registers for code
// size (Lam §2.3).
type Policy int

// Unroll policies.
const (
	// PolicyMinUnroll unrolls u = max qᵢ times and gives variable vᵢ the
	// smallest factor of u that is ≥ qᵢ registers ("the increase in
	// register space is much more tolerable than the increase in code
	// size", Lam §2.3).
	PolicyMinUnroll Policy = iota
	// PolicyLCM unrolls lcm(qᵢ) times and gives each variable exactly qᵢ
	// registers (minimum registers, potentially much more code).
	PolicyLCM
)

// Options tunes planning.
type Options struct {
	// Ctx, when non-nil, bounds the whole plan: the II search checks it
	// between candidate intervals and the copy-budget retry loop checks
	// it between reschedules, so a deadlined compile request aborts
	// instead of running to MaxII.
	Ctx          context.Context
	Policy       Policy
	BinarySearch bool // ablation: FPS-style binary search for the II
	DisableMVE   bool // ablation: never remove expandable-register edges
	// Effort selects the II-search backend: the paper's heuristic
	// (default) or the exact optimality-proving search with heuristic
	// fallback (schedule.EffortExact).
	Effort schedule.Effort
	// SchedBudget bounds the exact backend's wall clock per Search call;
	// 0 means schedule.DefaultExactBudget.  Ignored by the heuristic.
	SchedBudget time.Duration
	MaxII       int
	// MinII forces the search to start above the natural MII (used to
	// honor construct-window constraints).
	MinII int
	// LiveOut lists registers whose final values are observed after the
	// loop; expanded registers in this set receive fix-up moves.
	LiveOut map[ir.VReg]bool
	// MaxUnroll bounds the unrolled kernel size; plans that would exceed
	// it are degraded to smaller unrolls by giving up expansion of the
	// longest-lived variables.  0 means 32.
	MaxUnroll int
	// MaxBodyLen is the pipelining threshold of Lam §4.2: loops whose
	// locally compacted body exceeds it are not even attempted (the EXP
	// loop of Livermore kernel 22, at 331 instructions, was beyond the
	// Warp compiler's threshold).  0 means 300.
	MaxBodyLen int
	// IndependentMem asserts the loop carries no memory dependences
	// across iterations (source-level directive).
	IndependentMem bool
	// PowerOfTwoUnroll rounds the steady-state unroll degree up to a
	// power of two so that run-time remainder/pass arithmetic reduces to
	// a mask and a shift (the two-version scheme of §2.4 for loops with
	// run-time trip counts).
	PowerOfTwoUnroll bool
	// CopyBudgetF/I bound the extra registers modulo variable expansion
	// may claim; when exceeded, the costliest variables are un-expanded
	// (their inter-iteration constraints restored) and the loop is
	// rescheduled.  0 means unlimited.
	CopyBudgetF int
	CopyBudgetI int
	// RegKind reports the kind of a register, needed to apportion the
	// copy budget; nil disables budgeting.
	RegKind func(ir.VReg) ir.Kind
	// KeepMarginal disables the 99% check: by default, loops whose MII
	// is within 99% of the locally compacted body length are rejected
	// because pipelining cannot pay for its code growth (Lam §4.2,
	// kernels 16 and 20).
	KeepMarginal bool
	// Explain asks the II search to record a per-candidate failure report
	// (Plan.Explain / schedule.InfeasibleError.Explain).
	Explain bool
	// Tracer receives per-phase spans and counters; nil disables tracing
	// at zero cost.
	Tracer *trace.Tracer
}

// Plan is a complete pipelining decision for one loop.
type Plan struct {
	Nodes []*depgraph.Node
	// Graph is the scheduled (filtered) graph; FullGraph retains the
	// removable edges for verification.
	Graph     *depgraph.Graph
	FullGraph *depgraph.Graph

	II       int
	Stages   int // number of concurrently active iterations (m)
	Unroll   int // u: steady-state unroll degree from MVE
	Time     []int
	MaxIssue int

	// Rotating marks a plan for a rotating-register machine: the kernel
	// is not unrolled for MVE (Unroll stays 1) and each expanded
	// register gets exactly q_v copies addressed through rotation rings
	// instead of unroll classes (Copies[r] = Q[r]).
	Rotating bool

	MII    int // lower bound actually used (incl. construct windows)
	ResMII int
	RecMII int
	// HasRecurrence reports a nontrivial dependence cycle (the paper's
	// "connected components").
	HasRecurrence bool

	// Expanded registers and their allocated copy counts r_v ≥ q_v.
	Expanded map[ir.VReg]bool
	Copies   map[ir.VReg]int
	Q        map[ir.VReg]int
	Lifetime map[ir.VReg]int
	// Fixups lists expanded live-out registers that need a final move
	// from the last iteration's copy back to the base register.
	Fixups []ir.VReg

	SchedStats *schedule.Stats
	// Explain is the II-search explain report; nil unless Options.Explain.
	Explain *schedule.Explain
}

// CopyIndex returns which register copy iteration `iter` (the relative
// iteration index within the pipelined region; any representative of
// its class mod Unroll works, since copy counts divide the unroll
// degree) uses for r: iter mod r_v for expanded registers, 0 otherwise.
// On rotating plans iter must be the true relative iteration — there is
// no unrolling to quotient by.
func (p *Plan) CopyIndex(r ir.VReg, iter int) int {
	if n := p.Copies[r]; n > 1 {
		return iter % n
	}
	return 0
}

// MinPipelined returns the smallest number of iterations the pipelined
// region can execute: the prolog starts Stages-1 iterations and at least
// one full kernel pass must run.
func (p *Plan) MinPipelined() int { return p.Stages - 1 + p.Unroll }

// KernelPasses returns how many kernel passes cover k pipelined
// iterations; k must satisfy k ≥ MinPipelined and (k-(Stages-1)) % Unroll
// == 0.
func (p *Plan) KernelPasses(k int) int { return (k - (p.Stages - 1)) / p.Unroll }

// PlanLoop analyzes and schedules one loop body.  When the modulo-
// variable-expansion register cost exceeds the copy budget, the
// longest-lived variables are successively un-expanded and the loop is
// rescheduled with their inter-iteration constraints restored — a
// graceful version of the paper's "when we run out of registers, we
// resort to simple techniques" (§2.3).
func PlanLoop(nodes []*depgraph.Node, loopID int, m *machine.Machine, opts Options) (*Plan, error) {
	p, err := planLoop(nodes, loopID, m, opts)
	if err != nil && opts.Effort == schedule.EffortExact &&
		(opts.Ctx == nil || opts.Ctx.Err() == nil) {
		// A tighter exact schedule can fail checks downstream of the II
		// search — construct windows, the MVE unroll limit, the copy
		// budget — that the heuristic schedule would have passed.  Exact
		// effort must never pipeline less than the heuristic, so retry
		// the loop without it before giving up.
		ho := opts
		ho.Effort = schedule.EffortHeuristic
		if hp, herr := planLoop(nodes, loopID, m, ho); herr == nil {
			return hp, nil
		}
	}
	return p, err
}

func planLoop(nodes []*depgraph.Node, loopID int, m *machine.Machine, opts Options) (*Plan, error) {
	full := depgraph.BuildIndep(nodes, loopID, opts.IndependentMem)
	expanded := map[ir.VReg]bool{}
	if !opts.DisableMVE {
		for r, ok := range full.Expandable {
			if ok {
				expanded[r] = true
			}
		}
	}
	for {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("pipeline: plan aborted: %w", err)
			}
		}
		p, err := planWith(nodes, full, expanded, m, opts)
		if err != nil {
			return nil, err
		}
		if opts.RegKind == nil || (opts.CopyBudgetF <= 0 && opts.CopyBudgetI <= 0) {
			return p, nil
		}
		var cf, ci int
		worst := ir.NoReg
		worstQ := 0
		for r, n := range p.Copies {
			if n <= 1 {
				continue
			}
			if opts.RegKind(r) == ir.KindFloat {
				cf += n - 1
			} else {
				ci += n - 1
			}
			// Break copy-count ties on the lower register number:
			// ranging over the Copies map visits keys in a randomized
			// order, and letting that order pick the victim makes the
			// whole schedule differ from run to run.
			if p.Rotating {
				// Un-expanding a variable restores an anti-dependence that
				// bounds II from below by roughly its lifetime, so on a
				// rotating machine — where shrinking the unroll degree is
				// not a motive (it is already 1) — the cheapest victim is
				// the SHORTEST-lived expanded variable, not the longest.
				// (Under MVE the longest-lived victim also shrinks u, which
				// is what the retry is after.)
				if worst == ir.NoReg || n < worstQ || (n == worstQ && r < worst) {
					worstQ, worst = n, r
				}
				continue
			}
			if n > worstQ || (n == worstQ && (worst == ir.NoReg || r < worst)) {
				worstQ, worst = n, r
			}
		}
		okF := opts.CopyBudgetF <= 0 || cf <= opts.CopyBudgetF
		okI := opts.CopyBudgetI <= 0 || ci <= opts.CopyBudgetI
		if (okF && okI) || worst == ir.NoReg {
			return p, nil
		}
		if p.Rotating {
			// On a rotating machine every ring is ceil(lifetime/II) deep,
			// so a larger initiation interval shrinks all rings at once
			// without restoring any anti-dependence, while un-expanding a
			// variable bounds II from below by its whole lifetime.
			// Neither remedy dominates: probe one step of each — II+1
			// with every expansion kept, and the current interval with
			// the cheapest victim un-expanded — and keep whichever fits
			// the budget at the smaller interval (or whichever made more
			// progress when neither fits yet).
			po := opts
			po.MinII = p.II + 1
			pA, errA := planWith(nodes, full, expanded, m, po)
			exB := make(map[ir.VReg]bool, len(expanded))
			for r := range expanded {
				if r != worst {
					exB[r] = true
				}
			}
			pB, errB := planWith(nodes, full, exB, m, opts)
			fitsOf := func(pp *Plan) (int, bool) {
				f, i := copyCost(pp, opts.RegKind)
				okF := opts.CopyBudgetF <= 0 || f <= opts.CopyBudgetF
				okI := opts.CopyBudgetI <= 0 || i <= opts.CopyBudgetI
				return f + i, okF && okI
			}
			switch {
			case errA == nil && errB == nil:
				costA, fitA := fitsOf(pA)
				costB, fitB := fitsOf(pB)
				switch {
				case fitA && fitB:
					if pA.II <= pB.II {
						return pA, nil
					}
					return pB, nil
				case fitA:
					return pA, nil
				case fitB:
					return pB, nil
				case costA < costB:
					opts.MinII = po.MinII
				default:
					expanded = exB
				}
			case errA == nil:
				opts.MinII = po.MinII
			case errB == nil:
				expanded = exB
			default:
				// Neither remedy schedules; hand back the over-budget plan
				// and let the final register-file check rule on it.
				return p, nil
			}
			continue
		}
		delete(expanded, worst)
	}
}

// copyCost sums a plan's extra float/int copy registers.
func copyCost(p *Plan, kind func(ir.VReg) ir.Kind) (cf, ci int) {
	for r, n := range p.Copies {
		if n <= 1 {
			continue
		}
		if kind(r) == ir.KindFloat {
			cf += n - 1
		} else {
			ci += n - 1
		}
	}
	return
}

func planWith(nodes []*depgraph.Node, full *depgraph.Graph, expanded map[ir.VReg]bool, m *machine.Machine, opts Options) (*Plan, error) {
	g := full.Filter(expanded)

	sp := opts.Tracer.Begin("depgraph.analyze")
	a, err := depgraph.Analyze(g, m)
	if err != nil {
		sp.End()
		return nil, err
	}
	sccs := 0
	for ci := range a.SCC.Components {
		if !a.SCC.IsTrivial(g, ci) {
			sccs++
		}
	}
	sp.Arg("nodes", int64(len(g.Nodes))).Arg("edges", int64(len(g.Edges))).Arg("sccs", int64(sccs)).End()
	opts.Tracer.Count("depgraph.nodes", int64(len(g.Nodes)))
	opts.Tracer.Count("depgraph.edges", int64(len(g.Edges)))
	opts.Tracer.Count("depgraph.sccs", int64(sccs))
	// The loop-back branch occupies one sequencer slot of every steady-
	// state window; fold it into the resource bound so MetLower reflects
	// the true floor.
	v, err := depgraph.ResourceMIIExtra(g, m, []machine.ResUse{{Resource: machine.ResBranch}})
	if err != nil {
		return nil, err
	}
	if v > a.ResMII {
		a.ResMII = v
		if v > a.MII {
			a.MII = v
		}
	}
	// Construct windows: a reduced construct of length L must fit within
	// one initiation interval so that the emitted kernel can fork into
	// its branches without crossing the loop-back boundary (see
	// DESIGN.md).  This is the paper's "treating its operations as
	// indivisible ... increases the minimum initiation interval" (§4.1).
	minII := opts.MinII
	for _, n := range nodes {
		if n.Payload != nil && n.Len > minII {
			minII = n.Len
		}
	}

	// The §4.2 profitability guards, both computed against the locally
	// compacted body length.
	compact, err := schedule.List(g, m)
	if err != nil {
		return nil, err
	}
	maxBody := opts.MaxBodyLen
	if maxBody <= 0 {
		maxBody = 300
	}
	if compact.Length > maxBody {
		return nil, fmt.Errorf("pipeline: body length %d beyond pipelining threshold %d", compact.Length, maxBody)
	}
	effMII := a.MII
	if minII > effMII {
		effMII = minII
	}
	// The unpipelined comparison point is the full iteration period: the
	// locally compacted length padded until every inter-iteration
	// dependence drains.
	period := schedule.PeriodFor(g, compact, compact.Length)
	if !opts.KeepMarginal && effMII*100 >= period*99 {
		return nil, fmt.Errorf("pipeline: initiation interval bound %d within 99%% of unpipelined length %d", effMII, period)
	}

	maxII := opts.MaxII
	if maxII <= 0 {
		maxII = schedule.DefaultMaxII(a) + minII
	}
	var res *schedule.Result
	var st *schedule.Stats
	// One scheduler serves every construct-window retry: the SCC closures
	// and scheduling scratch carry over, only the floor MinII moves.
	searcher := schedule.New(opts.Effort, a, m)
	search := opts.Tracer.Begin("schedule.search")
	for {
		res, st, err = searcher.Search(schedule.Options{
			Ctx:            opts.Ctx,
			MaxII:          maxII,
			MinII:          minII,
			BinarySearch:   opts.BinarySearch,
			ReserveBranch:  true,
			BranchResource: machine.ResBranch,
			Explain:        opts.Explain,
			Budget:         opts.SchedBudget,
		})
		if st != nil {
			opts.Tracer.Count("schedule.attempts", int64(st.Attempts))
			opts.Tracer.Count("schedule.backtracks", int64(st.Backtracks))
		}
		if err != nil {
			search.End()
			return nil, err
		}
		if verr := schedule.Verify(g, m, res); verr != nil {
			return nil, fmt.Errorf("pipeline: internal schedule verification failed: %w", verr)
		}
		// Re-check construct windows against the achieved schedule.
		ok := true
		for i, n := range nodes {
			if n.Payload == nil {
				continue
			}
			if res.Time[i]%res.II+n.Len > res.II {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if res.II+1 > maxII {
			search.End()
			return nil, fmt.Errorf("pipeline: cannot fit construct windows within any II ≤ %d", maxII)
		}
		minII = res.II + 1
	}
	search.Arg("ii", int64(res.II)).End()

	p := &Plan{
		Nodes:         nodes,
		Graph:         g,
		FullGraph:     full,
		II:            res.II,
		Time:          res.Time,
		MII:           maxInt(a.MII, minII),
		ResMII:        a.ResMII,
		RecMII:        a.RecMII,
		HasRecurrence: a.HasRecurrence,
		Rotating:      m.RotatingRegs,
		Expanded:      expanded,
		Copies:        map[ir.VReg]int{},
		Q:             map[ir.VReg]int{},
		Lifetime:      map[ir.VReg]int{},
		SchedStats:    st,
		Explain:       res.Explain,
	}
	for _, t := range res.Time {
		if t > p.MaxIssue {
			p.MaxIssue = t
		}
	}
	p.Stages = p.MaxIssue/p.II + 1

	if err := p.expand(opts); err != nil {
		return nil, err
	}
	opts.Tracer.Count("mve.unroll", int64(p.Unroll))
	return p, nil
}

// expand performs modulo variable expansion: compute lifetimes and qᵢ from
// the final schedule, pick the unroll degree per policy, and allocate
// register copies.
func (p *Plan) expand(opts Options) error {
	maxUnroll := opts.MaxUnroll
	if maxUnroll <= 0 {
		maxUnroll = 32
	}
	type life struct {
		def  int
		use  int
		used bool
	}
	lives := map[ir.VReg]*life{}
	for i, n := range p.Nodes {
		t := p.Time[i]
		for _, w := range n.Writes {
			if !p.Expanded[w.Reg] {
				continue
			}
			l := lives[w.Reg]
			if l == nil {
				l = &life{def: t + w.AvailFirst, use: t + w.AvailFirst}
				lives[w.Reg] = l
			} else if t+w.AvailFirst < l.def {
				l.def = t + w.AvailFirst
			}
			// A copy stays occupied until its last write lands, even if
			// nothing reads that value (e.g. a dead final pointer bump):
			// the next write-back to the same physical copy must come
			// strictly later.
			if t+w.AvailLast > l.use {
				l.use = t + w.AvailLast
			}
		}
	}
	for i, n := range p.Nodes {
		t := p.Time[i]
		for _, rd := range n.Reads {
			l := lives[rd.Reg]
			if l == nil {
				continue
			}
			l.used = true
			if t+rd.Last > l.use {
				l.use = t + rd.Last
			}
		}
	}
	u := 1
	for r, l := range lives {
		lt := l.use - l.def + 1
		if lt < 1 {
			lt = 1
		}
		q := (lt + p.II - 1) / p.II
		if q < 1 {
			q = 1
		}
		p.Lifetime[r] = lt
		p.Q[r] = q
		switch opts.Policy {
		case PolicyLCM:
			u = lcm(u, q)
		default:
			if q > u {
				u = q
			}
		}
	}
	if p.Rotating {
		// Hardware rotation renames copies per iteration, so the kernel
		// needs no unrolling at all and every variable gets exactly its
		// minimum q_v copies — the divisibility constraint that forces
		// extra copies (or extra code) under pure MVE vanishes (Lam
		// §2.3's cost, paid only by software-renaming machines).
		p.Unroll = 1
		for r, q := range p.Q {
			p.Copies[r] = q
		}
	} else {
		if opts.PowerOfTwoUnroll {
			pow := 1
			for pow < u {
				pow *= 2
			}
			u = pow
		}
		if u > maxUnroll {
			return fmt.Errorf("pipeline: unroll degree %d exceeds limit %d", u, maxUnroll)
		}
		p.Unroll = u
		for r, q := range p.Q {
			switch opts.Policy {
			case PolicyLCM:
				if opts.PowerOfTwoUnroll {
					p.Copies[r] = smallestFactorAtLeast(u, q)
				} else {
					p.Copies[r] = q
				}
			default:
				p.Copies[r] = smallestFactorAtLeast(u, q)
			}
		}
	}
	// Fix-ups for live-out expanded registers.
	for r := range p.Expanded {
		if opts.LiveOut[r] && p.Copies[r] > 1 {
			p.Fixups = append(p.Fixups, r)
		}
	}
	sortRegs(p.Fixups)
	return nil
}

// TotalCopyRegs returns how many extra registers MVE costs, per kind.
func (p *Plan) TotalCopyRegs(prog *ir.Program) (flt, intg int) {
	for r, n := range p.Copies {
		if n <= 1 {
			continue
		}
		if prog.Kind(r) == ir.KindFloat {
			flt += n - 1
		} else {
			intg += n - 1
		}
	}
	return
}

func smallestFactorAtLeast(u, q int) int {
	for f := q; f <= u; f++ {
		if u%f == 0 {
			return f
		}
	}
	return u
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortRegs(rs []ir.VReg) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// FormatKernel renders the steady-state kernel as the paper draws it
// (Figure 2-2): one row per cycle of the initiation interval, each row
// listing the operations issued at that offset with the pipeline stage
// (⌊σ/II⌋) they belong to.  Reduced constructs print as their occupancy
// window.
func (p *Plan) FormatKernel() string {
	var b strings.Builder
	fmt.Fprintf(&b, "II=%d stages=%d unroll=%d  (MII=%d: res=%d rec=%d)\n",
		p.II, p.Stages, p.Unroll, p.MII, p.ResMII, p.RecMII)
	type slot struct {
		stage int
		desc  string
	}
	rows := make([][]slot, p.II)
	for i, n := range p.Nodes {
		t := p.Time[i]
		desc := ""
		switch {
		case n.Op != nil && n.Op.Mem != nil:
			desc = fmt.Sprintf("%v[%s]", n.Op.Class, n.Op.Mem.Array)
		case n.Op != nil:
			desc = n.Op.Class.String()
		default:
			desc = fmt.Sprintf("construct/%d", n.Len)
		}
		rows[t%p.II] = append(rows[t%p.II], slot{t / p.II, desc})
	}
	for off, ops := range rows {
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].stage != ops[j].stage {
				return ops[i].stage < ops[j].stage
			}
			return ops[i].desc < ops[j].desc
		})
		parts := make([]string, len(ops))
		for i, s := range ops {
			parts[i] = fmt.Sprintf("s%d:%s", s.stage, s.desc)
		}
		fmt.Fprintf(&b, "  t%%%d=%d | %s\n", p.II, off, strings.Join(parts, "  "))
	}
	return b.String()
}
