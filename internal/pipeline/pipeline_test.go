package pipeline

import (
	"testing"
	"testing/quick"

	"softpipe/internal/depgraph"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
)

func innerNodes(t *testing.T, p *ir.Program, m *machine.Machine) ([]*depgraph.Node, int) {
	t.Helper()
	var loop *ir.LoopStmt
	var find func(b *ir.Block)
	find = func(b *ir.Block) {
		for _, s := range b.Stmts {
			if l, ok := s.(*ir.LoopStmt); ok {
				loop = l
				find(l.Body)
			}
		}
	}
	find(p.Body)
	ops, _ := loop.Body.Ops()
	nodes := make([]*depgraph.Node, len(ops))
	for i, op := range ops {
		nodes[i] = depgraph.MustNodeFromOp(m, op)
	}
	return nodes, loop.ID
}

// longLived builds a loop where the loaded value is consumed after a long
// chain, forcing a multi-interval lifetime and hence unrolling.
func longLived() *ir.Program {
	b := ir.NewBuilder("life")
	b.Array("a", ir.KindFloat, 64)
	b.Array("c", ir.KindFloat, 64)
	b.ForN(64, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		q := l.Pointer(0, 1)
		v := b.Load("a", p, ir.Aff(l.ID, 1, 0))
		w := b.FMul(v, v)
		x := b.FMul(w, w)
		y := b.FAdd(x, v) // v stays live across ~17 cycles
		b.Store("c", q, y, ir.Aff(l.ID, 1, 0))
	})
	return b.P
}

func TestMVELifetimesAndUnroll(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	plan, err := PlanLoop(nodes, loopID, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.II != 2 {
		t.Fatalf("II = %d, want 2 (two multiplies per iteration)", plan.II)
	}
	// v is live from load+3 to the final fadd read (≥ two multiply
	// latencies): lifetime > II ⇒ multiple copies ⇒ unroll > 1.
	if plan.Unroll < 2 {
		t.Errorf("unroll = %d, want > 1 for a long-lived value at II=2", plan.Unroll)
	}
	for r, q := range plan.Q {
		lt := plan.Lifetime[r]
		want := (lt + plan.II - 1) / plan.II
		if q != want {
			t.Errorf("q[%d] = %d, want ceil(%d/%d) = %d", r, q, lt, plan.II, want)
		}
		// min-unroll policy: copies is the smallest factor of unroll ≥ q.
		c := plan.Copies[r]
		if c < q || plan.Unroll%c != 0 {
			t.Errorf("copies[%d] = %d invalid for q=%d u=%d", r, c, q, plan.Unroll)
		}
	}
}

func TestMVEPolicies(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	min, err := PlanLoop(nodes, loopID, m, Options{Policy: PolicyMinUnroll})
	if err != nil {
		t.Fatal(err)
	}
	nodes2, _ := innerNodes(t, longLived(), m)
	lcm, err := PlanLoop(nodes2, loopID, m, Options{Policy: PolicyLCM})
	if err != nil {
		t.Fatal(err)
	}
	// LCM policy uses exactly q registers per variable; min-unroll may
	// round up but never unrolls more than lcm.
	for r, q := range lcm.Q {
		if lcm.Copies[r] != q {
			t.Errorf("lcm policy: copies[%d] = %d, want %d", r, lcm.Copies[r], q)
		}
	}
	if min.Unroll > lcm.Unroll {
		t.Errorf("min-unroll %d > lcm %d", min.Unroll, lcm.Unroll)
	}
}

func TestPowerOfTwoUnroll(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	plan, err := PlanLoop(nodes, loopID, m, Options{PowerOfTwoUnroll: true})
	if err != nil {
		t.Fatal(err)
	}
	if u := plan.Unroll; u&(u-1) != 0 {
		t.Errorf("unroll %d not a power of two", u)
	}
	for r, c := range plan.Copies {
		if plan.Unroll%c != 0 {
			t.Errorf("copies[%d] = %d does not divide unroll %d", r, c, plan.Unroll)
		}
	}
}

func TestDisableMVERaisesII(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	with, err := PlanLoop(nodes, loopID, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nodes2, _ := innerNodes(t, longLived(), m)
	without, err := PlanLoop(nodes2, loopID, m, Options{DisableMVE: true})
	if err != nil {
		t.Fatal(err)
	}
	if without.II <= with.II {
		t.Errorf("disabling MVE should raise the II (with %d, without %d)", with.II, without.II)
	}
	if without.Unroll != 1 {
		t.Errorf("without MVE the kernel must not unroll, got %d", without.Unroll)
	}
}

func TestCopyBudgetDegrades(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	kind := func(r ir.VReg) ir.Kind { return ir.KindFloat }
	plan, err := PlanLoop(nodes, loopID, m, Options{
		CopyBudgetF: 1, CopyBudgetI: 1, RegKind: kind,
	})
	if err != nil {
		t.Fatal(err)
	}
	cf := 0
	for _, n := range plan.Copies {
		if n > 1 {
			cf += n - 1
		}
	}
	if cf > 2 { // float + int budget
		t.Errorf("budget exceeded: %d extra copies", cf)
	}
}

// Property: smallestFactorAtLeast returns a divisor of u that is >= q
// and minimal.
func TestSmallestFactorQuick(t *testing.T) {
	f := func(uRaw, qRaw uint8) bool {
		u := int(uRaw%16) + 1
		q := int(qRaw)%u + 1
		got := smallestFactorAtLeast(u, q)
		if got < q || u%got != 0 {
			return false
		}
		for f := q; f < got; f++ {
			if u%f == 0 {
				return false // not minimal
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelPassesMath(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	plan, err := PlanLoop(nodes, loopID, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := plan.MinPipelined()
	if got := plan.KernelPasses(k); got != 1 {
		t.Errorf("KernelPasses(MinPipelined) = %d, want 1", got)
	}
	if got := plan.KernelPasses(k + 3*plan.Unroll); got != 4 {
		t.Errorf("KernelPasses(+3u) = %d, want 4", got)
	}
}

// TestCopyIndexProperties: copy selection must cycle with period Copies[r]
// for expanded registers and stay 0 for everything else; the dead-write
// lifetime rule must count a trailing write's own land time (the fix for
// the write-back collision found by inner-loop unrolling).
func TestCopyIndexProperties(t *testing.T) {
	m := machine.Warp()
	nodes, loopID := innerNodes(t, longLived(), m)
	plan, err := PlanLoop(nodes, loopID, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var expanded ir.VReg = ir.NoReg
	for r, n := range plan.Copies {
		if n > 1 {
			expanded = r
		}
	}
	if expanded == ir.NoReg {
		t.Fatal("long-lived load should expand")
	}
	n := plan.Copies[expanded]
	for class := 0; class < 3*n; class++ {
		if got, want := plan.CopyIndex(expanded, class), class%n; got != want {
			t.Errorf("CopyIndex(%d) = %d, want %d", class, got, want)
		}
	}
	if plan.CopyIndex(ir.VReg(0), 5) != 0 {
		t.Error("unexpanded register must always use copy 0")
	}

	prog := longLived()
	f, i := plan.TotalCopyRegs(prog)
	if f <= 0 {
		t.Errorf("float copy registers = %d, want > 0", f)
	}
	if i < 0 {
		t.Errorf("int copy registers = %d", i)
	}

	// MinPipelined/KernelPasses consistency.
	k := plan.MinPipelined()
	if plan.KernelPasses(k) < 1 {
		t.Errorf("KernelPasses(MinPipelined) = %d, want >= 1", plan.KernelPasses(k))
	}
}

// TestDeadFinalWriteLifetime: a register whose last event is a write (the
// value is never read) must still hold its copy until the write lands, so
// q reflects the write latency, not just the read span.
func TestDeadFinalWriteLifetime(t *testing.T) {
	b := ir.NewBuilder("deadwrite")
	b.Array("a", ir.KindFloat, 64)
	zero := b.IConst(0)
	b.ForN(64, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		q := b.P.NewReg(ir.KindInt)
		// q := 0; load a[q+...]; q := q + p  — the final add is dead.
		init := b.P.NewOp(machine.ClassIMov)
		init.Dst = q
		init.Src = []ir.VReg{zero}
		b.Emit(init)
		b.Load("a", q, nil)
		bump := b.P.NewOp(machine.ClassAdrAdd)
		bump.Dst = q
		bump.Src = []ir.VReg{q, p}
		b.Emit(bump)
	})
	m := machine.Warp()
	nodes, loopID := innerNodes(t, b.P, m)
	plan, err := PlanLoop(nodes, loopID, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find q's vreg: the one with two writes (imov + adradd).  Its
	// lifetime must cover the dead adradd's write-back.
	for r, lt := range plan.Lifetime {
		qn := plan.Q[r]
		if qn*plan.II < lt {
			t.Errorf("r%d: q=%d II=%d does not cover lifetime %d", r, qn, plan.II, lt)
		}
	}
}
