package ir

import (
	"fmt"
	"math"

	"softpipe/internal/machine"
)

// State is the observable outcome of running a program: final array
// contents and named scalar results.  Differential tests compare States
// produced by the interpreter and by the VLIW simulator.
type State struct {
	FloatArrays map[string][]float64
	IntArrays   map[string][]int64
	Scalars     map[string]float64 // int results are stored as exact floats
}

// Equal reports whether two states are bit-for-bit identical.
func (s *State) Equal(o *State) bool {
	if len(s.FloatArrays) != len(o.FloatArrays) || len(s.IntArrays) != len(o.IntArrays) || len(s.Scalars) != len(o.Scalars) {
		return false
	}
	for k, v := range s.FloatArrays {
		w, ok := o.FloatArrays[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] != w[i] {
				return false
			}
		}
	}
	for k, v := range s.IntArrays {
		w, ok := o.IntArrays[k]
		if !ok || len(v) != len(w) {
			return false
		}
		for i := range v {
			if v[i] != w[i] {
				return false
			}
		}
	}
	for k, v := range s.Scalars {
		if w, ok := o.Scalars[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference, or "".
func (s *State) Diff(o *State) string {
	for k, v := range s.FloatArrays {
		w := o.FloatArrays[k]
		if len(v) != len(w) {
			return fmt.Sprintf("array %s: length %d vs %d", k, len(v), len(w))
		}
		for i := range v {
			if v[i] != w[i] {
				return fmt.Sprintf("array %s[%d]: %v vs %v", k, i, v[i], w[i])
			}
		}
	}
	for k, v := range s.IntArrays {
		w := o.IntArrays[k]
		if len(v) != len(w) {
			return fmt.Sprintf("array %s: length %d vs %d", k, len(v), len(w))
		}
		for i := range v {
			if v[i] != w[i] {
				return fmt.Sprintf("array %s[%d]: %d vs %d", k, i, v[i], w[i])
			}
		}
	}
	for k, v := range s.Scalars {
		if w, ok := o.Scalars[k]; !ok || v != w {
			return fmt.Sprintf("scalar %s: %v vs %v", k, v, o.Scalars[k])
		}
	}
	if !s.Equal(o) {
		return "states differ in key sets"
	}
	return ""
}

// InterpStats counts work done by the interpreter, used to estimate the
// "one operation at a time" execution cost.
type InterpStats struct {
	Ops   int64 // total operations executed
	Flops int64 // floating-point adds/subs/muls executed
}

// Interp executes a program and returns its observable final state.
// The step limit guards against accidental non-termination in generated
// tests; 0 means no limit.
type Interp struct {
	Prog     *Program
	MaxSteps int64
	// Input feeds ClassRecv ops (the cell's input channel); Output
	// collects ClassSend values.  A Recv beyond the input is an error
	// (the simulator's equivalent is a deadlock stall).
	Input  []float64
	Output []float64

	inPos int

	fregs []float64
	iregs []int64
	farrs map[string][]float64
	iarrs map[string][]int64
	stats InterpStats
}

// NewInterp prepares an interpreter with freshly initialized memory.
func NewInterp(p *Program) *Interp {
	in := &Interp{
		Prog:  p,
		fregs: make([]float64, p.NumRegs()),
		iregs: make([]int64, p.NumRegs()),
		farrs: make(map[string][]float64),
		iarrs: make(map[string][]int64),
	}
	for _, a := range p.Arrays {
		if a.Kind == KindFloat {
			mem := make([]float64, a.Size)
			copy(mem, a.InitF)
			in.farrs[a.Name] = mem
		} else {
			mem := make([]int64, a.Size)
			copy(mem, a.InitI)
			in.iarrs[a.Name] = mem
		}
	}
	return in
}

// Run executes the program body to completion.
func (in *Interp) Run() (*State, error) {
	if err := in.block(in.Prog.Body); err != nil {
		return nil, err
	}
	st := &State{
		FloatArrays: in.farrs,
		IntArrays:   in.iarrs,
		Scalars:     make(map[string]float64),
	}
	for _, r := range in.Prog.Results {
		if in.Prog.Kind(r.Reg) == KindFloat {
			st.Scalars[r.Name] = in.fregs[r.Reg]
		} else {
			st.Scalars[r.Name] = float64(in.iregs[r.Reg])
		}
	}
	return st, nil
}

// Stats reports the dynamic op counts of the last Run.
func (in *Interp) Stats() InterpStats { return in.stats }

func (in *Interp) block(b *Block) error {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *OpStmt:
			if err := in.op(s.Op); err != nil {
				return err
			}
		case *IfStmt:
			if in.iregs[s.Cond] != 0 {
				if err := in.block(s.Then); err != nil {
					return err
				}
			} else {
				if err := in.block(s.Else); err != nil {
					return err
				}
			}
		case *LoopStmt:
			n := s.CountImm
			if s.CountReg != NoReg {
				n = in.iregs[s.CountReg]
			}
			for i := int64(0); i < n; i++ {
				if err := in.block(s.Body); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func sign64f(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func sign64i(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (in *Interp) op(o *Op) error {
	in.stats.Ops++
	if in.MaxSteps > 0 && in.stats.Ops > in.MaxSteps {
		return fmt.Errorf("interp: step limit %d exceeded", in.MaxSteps)
	}
	f := in.fregs
	r := in.iregs
	switch o.Class {
	case machine.ClassNop:
	case machine.ClassFAdd:
		f[o.Dst] = f[o.Src[0]] + f[o.Src[1]]
		in.stats.Flops++
	case machine.ClassFSub:
		f[o.Dst] = f[o.Src[0]] - f[o.Src[1]]
		in.stats.Flops++
	case machine.ClassFMul:
		f[o.Dst] = f[o.Src[0]] * f[o.Src[1]]
		in.stats.Flops++
	case machine.ClassFNeg:
		f[o.Dst] = -f[o.Src[0]]
	case machine.ClassFMov:
		f[o.Dst] = f[o.Src[0]]
	case machine.ClassFConst:
		f[o.Dst] = o.FImm
	case machine.ClassRecv:
		if in.inPos >= len(in.Input) {
			return fmt.Errorf("interp: receive beyond end of input (op %d)", o.ID)
		}
		f[o.Dst] = in.Input[in.inPos]
		in.inPos++
	case machine.ClassSend:
		in.Output = append(in.Output, f[o.Src[0]])
	case machine.ClassFRecipSeed:
		f[o.Dst] = RecipSeed(f[o.Src[0]])
	case machine.ClassFRsqrtSeed:
		f[o.Dst] = RsqrtSeed(f[o.Src[0]])
	case machine.ClassF2I:
		r[o.Dst] = int64(f[o.Src[0]])
	case machine.ClassI2F:
		f[o.Dst] = float64(r[o.Src[0]])
	case machine.ClassFCmp:
		r[o.Dst] = b2i(Pred(o.IImm).Eval(sign64f(f[o.Src[0]], f[o.Src[1]])))
	case machine.ClassIAdd, machine.ClassAdrAdd:
		r[o.Dst] = r[o.Src[0]] + r[o.Src[1]]
	case machine.ClassISub:
		r[o.Dst] = r[o.Src[0]] - r[o.Src[1]]
	case machine.ClassIMul:
		r[o.Dst] = r[o.Src[0]] * r[o.Src[1]]
	case machine.ClassIMov:
		r[o.Dst] = r[o.Src[0]]
	case machine.ClassIConst:
		r[o.Dst] = o.IImm
	case machine.ClassICmp:
		r[o.Dst] = b2i(Pred(o.IImm).Eval(sign64i(r[o.Src[0]], r[o.Src[1]])))
	case machine.ClassISelect:
		if in.Prog.Kind(o.Dst) == KindFloat {
			if r[o.Src[0]] != 0 {
				f[o.Dst] = f[o.Src[1]]
			} else {
				f[o.Dst] = f[o.Src[2]]
			}
		} else {
			if r[o.Src[0]] != 0 {
				r[o.Dst] = r[o.Src[1]]
			} else {
				r[o.Dst] = r[o.Src[2]]
			}
		}
	case machine.ClassLoad:
		addr := r[o.Src[0]] + o.Mem.Disp
		arr := in.Prog.Array(o.Mem.Array)
		if addr < 0 || addr >= int64(arr.Size) {
			return fmt.Errorf("interp: load %s[%d] out of bounds (size %d), op %d", o.Mem.Array, addr, arr.Size, o.ID)
		}
		if arr.Kind == KindFloat {
			f[o.Dst] = in.farrs[o.Mem.Array][addr]
		} else {
			r[o.Dst] = in.iarrs[o.Mem.Array][addr]
		}
	case machine.ClassStore:
		addr := r[o.Src[0]] + o.Mem.Disp
		arr := in.Prog.Array(o.Mem.Array)
		if addr < 0 || addr >= int64(arr.Size) {
			return fmt.Errorf("interp: store %s[%d] out of bounds (size %d), op %d", o.Mem.Array, addr, arr.Size, o.ID)
		}
		if arr.Kind == KindFloat {
			in.farrs[o.Mem.Array][addr] = f[o.Src[1]]
		} else {
			in.iarrs[o.Mem.Array][addr] = r[o.Src[1]]
		}
	default:
		return fmt.Errorf("interp: cannot execute class %v (op %d)", o.Class, o.ID)
	}
	return nil
}

// Run is a convenience wrapper: interpret p and return its final state.
func Run(p *Program) (*State, error) {
	return NewInterp(p).Run()
}

// RecipSeed is the table-lookup reciprocal approximation (~8 significant
// bits) modeled after the seed hardware Warp-class FPUs used for software
// division; Newton steps in the INVERSE expansion refine it.
func RecipSeed(x float64) float64 {
	return math.Float64frombits(0x7FDE6238502484BA - math.Float64bits(x))
}

// RsqrtSeed is the reciprocal-square-root seed (the classic magic-number
// approximation), refined by the SQRT expansion.
func RsqrtSeed(x float64) float64 {
	return math.Float64frombits(0x5FE6EB50C7B537A9 - math.Float64bits(x)>>1)
}
