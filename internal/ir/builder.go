package ir

import (
	"fmt"

	"softpipe/internal/machine"
)

// Builder constructs Programs imperatively.  It is used by tests, by the
// examples, and by the synthetic workload generator; the W2 frontend in
// internal/lang lowers source programs through the same primitives.
//
// Ops are appended to the innermost open block.  ForN/If temporarily open
// nested blocks; helper emissions requested inside a loop body that belong
// in the loop preheader (pointer initialization) land in the enclosing
// block automatically because the loop statement is appended only when its
// body function returns.
type Builder struct {
	P *Program

	blocks []*Block // stack; blocks[0] is P.Body
}

// LoopCtx describes one open loop during building.
type LoopCtx struct {
	ID int

	b        *Builder
	parent   *Block // block enclosing the loop (preheader emissions)
	body     *Block
	iv       VReg
	deferred []*Op          // increments appended to the body when the loop closes
	steps    map[int64]VReg // pointer-step constants, shared per loop
}

// NewBuilder returns a builder over a fresh program.
func NewBuilder(name string) *Builder {
	p := NewProgram(name)
	return &Builder{P: p, blocks: []*Block{p.Body}}
}

func (b *Builder) cur() *Block { return b.blocks[len(b.blocks)-1] }

// CurrentBlock exposes the innermost open block (the frontend rewrites
// the last emitted op during assignment retargeting).
func (b *Builder) CurrentBlock() *Block { return b.cur() }

// Emit appends a raw op to the current block and returns it.
func (b *Builder) Emit(o *Op) *Op {
	b.cur().Stmts = append(b.cur().Stmts, &OpStmt{Op: o})
	return o
}

func (b *Builder) newOp(c machine.Class, dst VReg, src ...VReg) *Op {
	o := b.P.NewOp(c)
	o.Dst = dst
	o.Src = src
	return b.Emit(o)
}

// FConst materializes a float constant.
func (b *Builder) FConst(v float64) VReg {
	d := b.P.NewReg(KindFloat)
	o := b.newOp(machine.ClassFConst, d)
	o.FImm = v
	return d
}

// IConst materializes an int constant.
func (b *Builder) IConst(v int64) VReg {
	d := b.P.NewReg(KindInt)
	o := b.newOp(machine.ClassIConst, d)
	o.IImm = v
	return d
}

// FAdd emits dst = x + y.
func (b *Builder) FAdd(x, y VReg) VReg {
	d := b.P.NewReg(KindFloat)
	b.newOp(machine.ClassFAdd, d, x, y)
	return d
}

// FSub emits dst = x - y.
func (b *Builder) FSub(x, y VReg) VReg {
	d := b.P.NewReg(KindFloat)
	b.newOp(machine.ClassFSub, d, x, y)
	return d
}

// FMul emits dst = x * y.
func (b *Builder) FMul(x, y VReg) VReg {
	d := b.P.NewReg(KindFloat)
	b.newOp(machine.ClassFMul, d, x, y)
	return d
}

// FNeg emits dst = -x.
func (b *Builder) FNeg(x VReg) VReg {
	d := b.P.NewReg(KindFloat)
	b.newOp(machine.ClassFNeg, d, x)
	return d
}

// FMov emits dst = x (float copy into a fresh register).
func (b *Builder) FMov(x VReg) VReg {
	d := b.P.NewReg(KindFloat)
	b.newOp(machine.ClassFMov, d, x)
	return d
}

// FAssign emits dst = x into an existing register (a mutable variable).
func (b *Builder) FAssign(dst, x VReg) { b.newOp(machine.ClassFMov, dst, x) }

// IAssign emits dst = x into an existing int register.
func (b *Builder) IAssign(dst, x VReg) { b.newOp(machine.ClassIMov, dst, x) }

// FAddTo emits dst = x + y into an existing register.
func (b *Builder) FAddTo(dst, x, y VReg) { b.newOp(machine.ClassFAdd, dst, x, y) }

// FSubTo emits dst = x - y into an existing register.
func (b *Builder) FSubTo(dst, x, y VReg) { b.newOp(machine.ClassFSub, dst, x, y) }

// FMulTo emits dst = x * y into an existing register.
func (b *Builder) FMulTo(dst, x, y VReg) { b.newOp(machine.ClassFMul, dst, x, y) }

// IAdd emits dst = x + y.
func (b *Builder) IAdd(x, y VReg) VReg {
	d := b.P.NewReg(KindInt)
	b.newOp(machine.ClassIAdd, d, x, y)
	return d
}

// ISub emits dst = x - y.
func (b *Builder) ISub(x, y VReg) VReg {
	d := b.P.NewReg(KindInt)
	b.newOp(machine.ClassISub, d, x, y)
	return d
}

// IMul emits dst = x * y.
func (b *Builder) IMul(x, y VReg) VReg {
	d := b.P.NewReg(KindInt)
	b.newOp(machine.ClassIMul, d, x, y)
	return d
}

// IAddTo emits dst = x + y into an existing int register.
func (b *Builder) IAddTo(dst, x, y VReg) { b.newOp(machine.ClassIAdd, dst, x, y) }

// FCmp emits an int 0/1 register = pred(x, y) over floats.
func (b *Builder) FCmp(p Pred, x, y VReg) VReg {
	d := b.P.NewReg(KindInt)
	o := b.newOp(machine.ClassFCmp, d, x, y)
	o.IImm = int64(p)
	return d
}

// ICmp emits an int 0/1 register = pred(x, y) over ints.
func (b *Builder) ICmp(p Pred, x, y VReg) VReg {
	d := b.P.NewReg(KindInt)
	o := b.newOp(machine.ClassICmp, d, x, y)
	o.IImm = int64(p)
	return d
}

// Select emits dst = cond != 0 ? x : y, with dst of the kind of x.
func (b *Builder) Select(cond, x, y VReg) VReg {
	d := b.P.NewReg(b.P.Kind(x))
	b.newOp(machine.ClassISelect, d, cond, x, y)
	return d
}

// Recv emits dst = one word dequeued from the cell's input channel.
func (b *Builder) Recv() VReg {
	d := b.P.NewReg(KindFloat)
	b.newOp(machine.ClassRecv, d)
	return d
}

// Send enqueues x on the cell's output channel.
func (b *Builder) Send(x VReg) {
	b.newOp(machine.ClassSend, NoReg, x)
}

// Load emits dst = arr[addr] with an optional affine annotation.
func (b *Builder) Load(arr string, addr VReg, aff *Affine) VReg {
	return b.LoadAt(arr, addr, 0, aff)
}

// LoadAt emits dst = arr[addr + disp]: the constant displacement lets
// several references share one strength-reduced pointer.
func (b *Builder) LoadAt(arr string, addr VReg, disp int64, aff *Affine) VReg {
	a := b.P.Array(arr)
	if a == nil {
		panic(fmt.Sprintf("builder: unknown array %q", arr))
	}
	d := b.P.NewReg(a.Kind)
	o := b.newOp(machine.ClassLoad, d, addr)
	o.Mem = &MemRef{Array: arr, Disp: disp, Affine: aff}
	return d
}

// Store emits arr[addr] = val with an optional affine annotation.
func (b *Builder) Store(arr string, addr, val VReg, aff *Affine) {
	b.StoreAt(arr, addr, 0, val, aff)
}

// StoreAt emits arr[addr + disp] = val.
func (b *Builder) StoreAt(arr string, addr VReg, disp int64, val VReg, aff *Affine) {
	if b.P.Array(arr) == nil {
		panic(fmt.Sprintf("builder: unknown array %q", arr))
	}
	o := b.newOp(machine.ClassStore, NoReg, addr, val)
	o.Mem = &MemRef{Array: arr, Disp: disp, Affine: aff}
}

// Array declares an array on the program.
func (b *Builder) Array(name string, kind Kind, size int) *ArrayDecl {
	return b.P.AddArray(name, kind, size)
}

// Result registers a named observable scalar.
func (b *Builder) Result(name string, r VReg) {
	b.P.Results = append(b.P.Results, ScalarResult{Name: name, Reg: r})
}

// ForN opens a loop with a compile-time trip count and runs fn to fill its
// body.  The loop statement is appended after fn returns, so ops emitted
// into the enclosing block during fn (e.g. Pointer initialization) precede
// the loop.
func (b *Builder) ForN(n int64, fn func(l *LoopCtx)) *LoopStmt {
	return b.forCommon(NoReg, n, fn)
}

// ForReg opens a loop whose trip count is read from an int register
// (evaluated once on loop entry).
func (b *Builder) ForReg(n VReg, fn func(l *LoopCtx)) *LoopStmt {
	return b.forCommon(n, 0, fn)
}

func (b *Builder) forCommon(nreg VReg, nimm int64, fn func(l *LoopCtx)) *LoopStmt {
	loop := &LoopStmt{ID: b.P.NewLoopID(), CountReg: nreg, CountImm: nimm, Body: &Block{}}
	ctx := &LoopCtx{ID: loop.ID, b: b, parent: b.cur(), body: loop.Body, iv: NoReg}
	b.blocks = append(b.blocks, loop.Body)
	fn(ctx)
	for _, inc := range ctx.deferred {
		loop.Body.Stmts = append(loop.Body.Stmts, &OpStmt{Op: inc})
	}
	b.blocks = b.blocks[:len(b.blocks)-1]
	b.cur().Stmts = append(b.cur().Stmts, loop)
	return loop
}

// If opens a conditional; elseFn may be nil.
func (b *Builder) If(cond VReg, thenFn, elseFn func()) {
	s := &IfStmt{Cond: cond, Then: &Block{}, Else: &Block{}}
	b.blocks = append(b.blocks, s.Then)
	thenFn()
	b.blocks = b.blocks[:len(b.blocks)-1]
	if elseFn != nil {
		b.blocks = append(b.blocks, s.Else)
		elseFn()
		b.blocks = b.blocks[:len(b.blocks)-1]
	}
	b.cur().Stmts = append(b.cur().Stmts, s)
}

func (l *LoopCtx) preheader(o *Op) {
	l.parent.Stmts = append(l.parent.Stmts, &OpStmt{Op: o})
}

// IV returns the loop's 0-based iteration index register, materializing
// the counter on first use: the register is initialized to 0 in the
// preheader and incremented at the end of each iteration, so the body
// observes values 0, 1, 2, ...
func (l *LoopCtx) IV() VReg {
	if l.iv != NoReg {
		return l.iv
	}
	b := l.b
	iv := b.P.NewReg(KindInt)
	init := b.P.NewOp(machine.ClassIConst)
	init.Dst = iv
	l.preheader(init)
	one := l.stepConst(1)
	inc := b.P.NewOp(machine.ClassIAdd)
	inc.Dst = iv
	inc.Src = []VReg{iv, one}
	l.deferred = append(l.deferred, inc)
	l.iv = iv
	return iv
}

// Pointer creates a strength-reduced address register for the loop: it is
// initialized to `init` in the preheader and incremented by `step` at the
// end of every iteration, so it holds init + step·k during iteration k.
func (l *LoopCtx) Pointer(init int64, step int64) VReg {
	b := l.b
	p := b.P.NewReg(KindInt)
	o := b.P.NewOp(machine.ClassIConst)
	o.Dst = p
	o.IImm = init
	l.preheader(o)
	l.addStep(p, step)
	return p
}

// PointerFrom is like Pointer but starts from a register value computed in
// the enclosing block (e.g. an outer-loop pointer).
func (l *LoopCtx) PointerFrom(init VReg, step int64) VReg {
	b := l.b
	p := b.P.NewReg(KindInt)
	o := b.P.NewOp(machine.ClassIMov)
	o.Dst = p
	o.Src = []VReg{init}
	l.preheader(o)
	l.addStep(p, step)
	return p
}

func (l *LoopCtx) addStep(p VReg, step int64) {
	inc := l.b.P.NewOp(machine.ClassAdrAdd)
	inc.Dst = p
	inc.Src = []VReg{p, l.stepConst(step)}
	l.deferred = append(l.deferred, inc)
}

// stepConst returns a register holding the given constant, shared among
// this loop's pointer steps and emitted once in the preheader.
func (l *LoopCtx) stepConst(v int64) VReg {
	if r, ok := l.steps[v]; ok {
		return r
	}
	b := l.b
	op := b.P.NewOp(machine.ClassIConst)
	op.Dst = b.P.NewReg(KindInt)
	op.IImm = v
	l.preheader(op)
	if l.steps == nil {
		l.steps = map[int64]VReg{}
	}
	l.steps[v] = op.Dst
	return op.Dst
}

// InPreheader runs fn with emission redirected to the block enclosing the
// loop (its preheader position: ops emitted there land before the loop
// statement, which is appended only when the loop body function returns).
func (b *Builder) InPreheader(l *LoopCtx, fn func()) {
	b.blocks = append(b.blocks, l.parent)
	fn()
	b.blocks = b.blocks[:len(b.blocks)-1]
}

// DeferOp schedules an op to run at the very end of each loop iteration
// (after the automatically generated pointer increments emitted so far).
func (l *LoopCtx) DeferOp(o *Op) { l.deferred = append(l.deferred, o) }

// Aff is a convenience constructor for a one-loop affine annotation.
func Aff(loopID int, coef, c int64) *Affine {
	return &Affine{Const: c, Coef: map[int]int64{loopID: coef}}
}

// With adds one more loop coefficient and returns the annotation, so
// multi-loop subscripts chain: ir.Aff(i, 32, 0).With(j, 1).
func (a *Affine) With(loopID int, coef int64) *Affine {
	a.Coef[loopID] = coef
	return a
}
