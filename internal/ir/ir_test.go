package ir

import (
	"math"
	"testing"
	"testing/quick"

	"softpipe/internal/machine"
)

func TestPredEval(t *testing.T) {
	cases := []struct {
		p    Pred
		sign int
		want bool
	}{
		{PredEQ, 0, true}, {PredEQ, 1, false},
		{PredNE, 0, false}, {PredNE, -1, true},
		{PredLT, -1, true}, {PredLT, 0, false},
		{PredLE, 0, true}, {PredLE, 1, false},
		{PredGT, 1, true}, {PredGT, 0, false},
		{PredGE, 0, true}, {PredGE, -1, false},
	}
	for _, c := range cases {
		if got := c.p.Eval(c.sign); got != c.want {
			t.Errorf("%v.Eval(%d) = %v", c.p, c.sign, got)
		}
	}
}

// Property: for every predicate and pair of ints, Eval agrees with the
// direct comparison (testing/quick).
func TestPredEvalQuick(t *testing.T) {
	f := func(a, b int32, predRaw uint8) bool {
		p := Pred(predRaw % 6)
		sign := 0
		if a < b {
			sign = -1
		} else if a > b {
			sign = 1
		}
		want := map[Pred]bool{
			PredEQ: a == b, PredNE: a != b, PredLT: a < b,
			PredLE: a <= b, PredGT: a > b, PredGE: a >= b,
		}[p]
		return p.Eval(sign) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Affine Clone is deep and SameInvariants is an equivalence on
// the generated values.
func TestAffineCloneQuick(t *testing.T) {
	f := func(c int64, k1, k2 uint8, v1, v2 int64) bool {
		a := &Affine{Const: c, Coef: map[int]int64{int(k1): v1}, Inv: map[VReg]int64{VReg(k2): v2}}
		b := a.Clone()
		if !a.SameInvariants(b) {
			return false
		}
		b.Inv[VReg(k2)] = v2 + 1
		// Clone must be independent.
		if a.Inv[VReg(k2)] != v2 {
			return false
		}
		return v2+1 == 0 || !a.SameInvariants(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameInvariantsZeroEntries(t *testing.T) {
	a := &Affine{Inv: map[VReg]int64{1: 0}}
	b := &Affine{}
	if !a.SameInvariants(b) {
		t.Error("zero-coefficient invariants must not distinguish annotations")
	}
}

func TestValidateErrors(t *testing.T) {
	m := machine.Warp()
	p := NewProgram("bad")
	f := p.NewReg(KindFloat)
	i := p.NewReg(KindInt)

	mk := func(c machine.Class, dst VReg, src ...VReg) *Program {
		q := NewProgram("bad")
		q.RegKind = append([]Kind{}, p.RegKind...)
		op := q.NewOp(c)
		op.Dst = dst
		op.Src = src
		q.Body.Stmts = []Stmt{&OpStmt{Op: op}}
		return q
	}
	if err := mk(machine.ClassFAdd, f, f, i).Validate(m); err == nil {
		t.Error("fadd with int source must fail")
	}
	if err := mk(machine.ClassFAdd, i, f, f).Validate(m); err == nil {
		t.Error("fadd with int dest must fail")
	}
	if err := mk(machine.ClassFAdd, f, f).Validate(m); err == nil {
		t.Error("fadd with one operand must fail")
	}
	if err := mk(machine.ClassLoad, f, i).Validate(m); err == nil {
		t.Error("load without memory annotation must fail")
	}
}

func TestInterpArithmetic(t *testing.T) {
	b := NewBuilder("arith")
	x := b.FConst(3)
	y := b.FConst(4)
	sum := b.FAdd(x, y)
	dif := b.FSub(x, y)
	prd := b.FMul(x, y)
	neg := b.FNeg(x)
	b.Result("sum", sum)
	b.Result("dif", dif)
	b.Result("prd", prd)
	b.Result("neg", neg)
	i1 := b.IConst(10)
	i2 := b.IConst(3)
	b.Result("iadd", b.IAdd(i1, i2))
	b.Result("isub", b.ISub(i1, i2))
	b.Result("imul", b.IMul(i1, i2))
	b.Result("cmp", b.ICmp(PredGT, i1, i2))
	st, err := Run(b.P)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"sum": 7, "dif": -1, "prd": 12, "neg": -3,
		"iadd": 13, "isub": 7, "imul": 30, "cmp": 1,
	}
	for k, v := range want {
		if st.Scalars[k] != v {
			t.Errorf("%s = %v, want %v", k, st.Scalars[k], v)
		}
	}
}

func TestInterpSeeds(t *testing.T) {
	// The seed ops must be deterministic and within coarse tolerance.
	for _, x := range []float64{0.5, 1, 2, 10, 123.25} {
		r := RecipSeed(x)
		if math.Abs(r*x-1) > 0.2 {
			t.Errorf("RecipSeed(%v) = %v too far", x, r)
		}
		q := RsqrtSeed(x)
		if math.Abs(q*q*x-1) > 0.2 {
			t.Errorf("RsqrtSeed(%v) = %v too far", x, q)
		}
	}
}

func TestInterpBoundsChecked(t *testing.T) {
	b := NewBuilder("oob")
	b.Array("a", KindFloat, 4)
	addr := b.IConst(9)
	b.Load("a", addr, nil)
	if _, err := Run(b.P); err == nil {
		t.Fatal("out-of-bounds load must fail")
	}
}

func TestInterpStepLimit(t *testing.T) {
	b := NewBuilder("long")
	b.Array("a", KindFloat, 4)
	b.ForN(1000, func(l *LoopCtx) {
		p := l.Pointer(0, 0)
		v := b.Load("a", p, nil)
		b.Store("a", p, v, nil)
	})
	in := NewInterp(b.P)
	in.MaxSteps = 10
	if _, err := in.Run(); err == nil {
		t.Fatal("step limit must trip")
	}
}

func TestStateDiff(t *testing.T) {
	a := &State{
		FloatArrays: map[string][]float64{"x": {1, 2}},
		IntArrays:   map[string][]int64{},
		Scalars:     map[string]float64{"s": 1},
	}
	b := &State{
		FloatArrays: map[string][]float64{"x": {1, 3}},
		IntArrays:   map[string][]int64{},
		Scalars:     map[string]float64{"s": 1},
	}
	if a.Equal(b) || a.Diff(b) == "" {
		t.Error("differing states must not compare equal")
	}
	if !a.Equal(a) || a.Diff(a) != "" {
		t.Error("state must equal itself")
	}
}

func TestBuilderDeterministicIDs(t *testing.T) {
	mk := func() *Program {
		b := NewBuilder("det")
		b.Array("a", KindFloat, 8)
		c := b.FConst(1)
		b.ForN(4, func(l *LoopCtx) {
			p := l.Pointer(0, 1)
			v := b.Load("a", p, Aff(l.ID, 1, 0))
			b.Store("a", p, b.FAdd(v, c), Aff(l.ID, 1, 0))
		})
		return b.P
	}
	if mk().String() != mk().String() {
		t.Error("builder output must be deterministic")
	}
}

func TestPointerSemantics(t *testing.T) {
	// Pointer(init, step) holds init + step*k during iteration k.
	b := NewBuilder("ptr")
	b.Array("a", KindFloat, 16)
	out := b.Array("c", KindFloat, 16)
	_ = out
	one := b.FConst(1)
	b.ForN(5, func(l *LoopCtx) {
		p := l.Pointer(2, 3) // 2, 5, 8, 11, 14
		b.Store("c", p, one, Aff(l.ID, 3, 2))
	})
	st, err := Run(b.P)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0} {
		if st.FloatArrays["c"][i] != want {
			t.Fatalf("c[%d] = %v, want %v", i, st.FloatArrays["c"][i], want)
		}
	}
}
