package ir

import (
	"strings"
	"testing"

	"softpipe/internal/machine"
)

func TestSelectAndConversions(t *testing.T) {
	b := NewBuilder("selconv")
	x := b.FConst(2.75)
	y := b.FConst(-1.5)
	ci := b.ICmp(PredLT, b.IConst(1), b.IConst(2))
	fsel := b.Select(ci, x, y)
	isel := b.Select(ci, b.IConst(10), b.IConst(20))
	b.Result("fsel", fsel)
	b.Result("isel", isel)

	// trunc / float round trip.
	tr := b.P.NewOp(machine.ClassF2I)
	tr.Dst = b.P.NewReg(KindInt)
	tr.Src = []VReg{x}
	b.Emit(tr)
	fl := b.P.NewOp(machine.ClassI2F)
	fl.Dst = b.P.NewReg(KindFloat)
	fl.Src = []VReg{tr.Dst}
	b.Emit(fl)
	b.Result("trunc", tr.Dst)
	b.Result("back", fl.Dst)

	neg := b.FNeg(x)
	mov := b.FMov(neg)
	b.Result("mov", mov)

	st, err := Run(b.P)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"fsel": 2.75, "isel": 10, "trunc": 2, "back": 2, "mov": -2.75,
	}
	for k, v := range want {
		if st.Scalars[k] != v {
			t.Errorf("%s = %v, want %v", k, st.Scalars[k], v)
		}
	}
}

func TestSelectFalsePath(t *testing.T) {
	b := NewBuilder("selfalse")
	cond := b.ICmp(PredGT, b.IConst(1), b.IConst(2))
	v := b.Select(cond, b.FConst(1), b.FConst(9))
	b.Result("v", v)
	st, err := Run(b.P)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scalars["v"] != 9 {
		t.Errorf("select false arm = %v", st.Scalars["v"])
	}
}

func TestIntArrays(t *testing.T) {
	b := NewBuilder("intarr")
	arr := b.Array("n", KindInt, 8)
	arr.InitI = []int64{5, 4, 3, 2, 1, 0, -1, -2}
	b.ForN(8, func(l *LoopCtx) {
		p := l.Pointer(0, 1)
		v := b.Load("n", p, Aff(l.ID, 1, 0))
		w := b.IMul(v, v)
		b.Store("n", p, w, Aff(l.ID, 1, 0))
	})
	st, err := Run(b.P)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range []int64{5, 4, 3, 2, 1, 0, -1, -2} {
		if st.IntArrays["n"][i] != in*in {
			t.Errorf("n[%d] = %d", i, st.IntArrays["n"][i])
		}
	}
}

func TestProgramString(t *testing.T) {
	b := NewBuilder("printer")
	b.Array("a", KindFloat, 4)
	c := b.FConst(1)
	b.ForN(4, func(l *LoopCtx) {
		p := l.Pointer(0, 1)
		v := b.Load("a", p, Aff(l.ID, 1, 0))
		cond := b.FCmp(PredGT, v, c)
		b.If(cond, func() {
			b.Store("a", p, c, Aff(l.ID, 1, 0))
		}, func() {
			b.Store("a", p, v, Aff(l.ID, 1, 0))
		})
	})
	s := b.P.String()
	for _, want := range []string{"program printer", "array a", "loop 0 times 4", "if r", "} else {", "fcmp.gt", "load", "store"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestOpClone(t *testing.T) {
	p := NewProgram("clone")
	p.AddArray("a", KindFloat, 4)
	op := p.NewOp(machine.ClassLoad)
	op.Dst = p.NewReg(KindFloat)
	op.Src = []VReg{p.NewReg(KindInt)}
	op.Mem = &MemRef{Array: "a", Disp: 2, Affine: &Affine{Const: 1, Coef: map[int]int64{0: 1}}}
	c := op.Clone()
	c.Src[0] = 99
	c.Mem.Affine.Coef[0] = 42
	c.Mem.Disp = 7
	if op.Src[0] == 99 || op.Mem.Affine.Coef[0] == 42 || op.Mem.Disp == 7 {
		t.Error("Clone must be deep")
	}
}

func TestValidateControlShapes(t *testing.T) {
	m := machine.Warp()
	p := NewProgram("ctl")
	f := p.NewReg(KindFloat)
	bad := &IfStmt{Cond: f, Then: &Block{}, Else: &Block{}}
	p.Body.Stmts = []Stmt{bad}
	if err := p.Validate(m); err == nil {
		t.Error("float if-condition must be rejected")
	}
	p2 := NewProgram("ctl2")
	r := p2.NewReg(KindFloat)
	loop := &LoopStmt{CountReg: r, Body: &Block{}}
	p2.Body.Stmts = []Stmt{loop}
	if err := p2.Validate(m); err == nil {
		t.Error("float loop count must be rejected")
	}
}

func TestInterpStats(t *testing.T) {
	b := NewBuilder("stats")
	x := b.FConst(1)
	y := b.FAdd(x, x)
	b.Result("y", b.FMul(y, y))
	in := NewInterp(b.P)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	st := in.Stats()
	if st.Ops != 3 || st.Flops != 2 {
		t.Errorf("stats = %+v, want 3 ops, 2 flops", st)
	}
}

func TestIVCounter(t *testing.T) {
	b := NewBuilder("iv")
	b.Array("a", KindInt, 6)
	b.ForN(6, func(l *LoopCtx) {
		p := l.Pointer(0, 1)
		b.Store("a", p, l.IV(), Aff(l.ID, 1, 0))
	})
	st, err := Run(b.P)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if st.IntArrays["a"][i] != int64(i) {
			t.Errorf("iv at %d = %d", i, st.IntArrays["a"][i])
		}
	}
}
