// Package ir defines the loop-structured intermediate representation the
// software pipeliner operates on, together with a reference interpreter
// that serves as the correctness oracle for all code generators.
//
// The IR is deliberately close to the model in Lam (PLDI 1988) §2.1:
// a loop body is a straight-line sequence of operations over virtual
// registers (plus nested structured constructs handled by hierarchical
// reduction), and data dependencies — not an SSA graph — drive scheduling.
// Virtual registers are mutable; the dependence analyzer in
// internal/depgraph derives flow/anti/output edges with (delay, omega)
// attributes from the imperative order.
//
// One contract follows from mutability: a register read must be
// preceded by a write on the executed path.  The interpreter
// zero-initializes registers, but compiled code shares physical
// registers between disjoint lifetimes, so a read that no write
// dominates observes an undefined value.
package ir

import (
	"fmt"
	"strings"

	"softpipe/internal/machine"
)

// VReg names a virtual register.  NoReg marks an absent operand.
type VReg int

// NoReg is the absent-register sentinel.
const NoReg VReg = -1

// Kind is the value kind held by a register or array.
type Kind int

// Register/array kinds.
const (
	KindInt Kind = iota
	KindFloat
)

// String returns "int" or "float".
func (k Kind) String() string {
	if k == KindFloat {
		return "float"
	}
	return "int"
}

// Pred is a comparison predicate, stored in Op.IImm for FCmp/ICmp.
type Pred int64

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

var predNames = [...]string{"eq", "ne", "lt", "le", "gt", "ge"}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", int64(p))
}

// Eval applies the predicate to an ordering sign (-1, 0, +1).
func (p Pred) Eval(sign int) bool {
	switch p {
	case PredEQ:
		return sign == 0
	case PredNE:
		return sign != 0
	case PredLT:
		return sign < 0
	case PredLE:
		return sign <= 0
	case PredGT:
		return sign > 0
	case PredGE:
		return sign >= 0
	}
	return false
}

// Affine describes a memory address as
//
//	Const + Σ Coef[loopID]·n(loopID) + Σ Inv[reg]·value(reg)
//
// in array-element units, where n(loopID) is the loop's 0-based
// normalized iteration counter and Inv holds loop-invariant symbolic
// terms (runtime loop bounds, invariant scalars).  Two references are
// comparable by the dependence test only when their Inv parts match
// exactly.  Execution uses the explicit address register instead.
type Affine struct {
	Const int64
	Coef  map[int]int64  // loop ID -> coefficient
	Inv   map[VReg]int64 // invariant register -> coefficient
}

// Clone returns a deep copy.
func (a *Affine) Clone() *Affine {
	if a == nil {
		return nil
	}
	c := &Affine{Const: a.Const, Coef: make(map[int]int64, len(a.Coef))}
	for k, v := range a.Coef {
		c.Coef[k] = v
	}
	if a.Inv != nil {
		c.Inv = make(map[VReg]int64, len(a.Inv))
		for k, v := range a.Inv {
			c.Inv[k] = v
		}
	}
	return c
}

// SameInvariants reports whether two annotations have identical symbolic
// invariant parts (required for the constant-difference distance test).
func (a *Affine) SameInvariants(b *Affine) bool {
	for k, v := range a.Inv {
		if v != 0 && b.Inv[k] != v {
			return false
		}
	}
	for k, v := range b.Inv {
		if v != 0 && a.Inv[k] != v {
			return false
		}
	}
	return true
}

// MemRef annotates a Load/Store with the array it touches, a constant
// word displacement added to the address register at execution (so many
// references can share one strength-reduced pointer), and, when the
// frontend could prove it, the affine form of the full address.
type MemRef struct {
	Array  string
	Disp   int64
	Affine *Affine // nil means the address is opaque (worst-case deps)
}

// Op is one machine-independent operation.
//
// Operand conventions:
//
//	Load:   Dst = value, Src[0] = address (int), Mem != nil
//	Store:  Src[0] = address (int), Src[1] = value, Mem != nil
//	FCmp/ICmp: Dst (int) = Pred(Src[0], Src[1]), predicate in IImm
//	ISelect:   Dst = Src[0] != 0 ? Src[1] : Src[2]
//	FConst/IConst: Dst = FImm / IImm
type Op struct {
	ID    int
	Class machine.Class
	Dst   VReg
	Src   []VReg
	FImm  float64
	IImm  int64
	Mem   *MemRef
}

// Reads returns the registers the op reads (at issue time).
func (o *Op) Reads() []VReg { return o.Src }

// Writes returns the register the op writes, or NoReg.
func (o *Op) Writes() VReg { return o.Dst }

// Clone returns a deep copy of the op (fresh Src slice and MemRef).
func (o *Op) Clone() *Op {
	c := *o
	c.Src = append([]VReg(nil), o.Src...)
	if o.Mem != nil {
		m := *o.Mem
		m.Affine = o.Mem.Affine.Clone()
		c.Mem = &m
	}
	return &c
}

// String renders the op for diagnostics.
func (o *Op) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d? ", o.ID)
	b.Reset()
	if o.Dst != NoReg {
		fmt.Fprintf(&b, "r%d = ", o.Dst)
	}
	b.WriteString(o.Class.String())
	switch o.Class {
	case machine.ClassFConst:
		fmt.Fprintf(&b, " %g", o.FImm)
	case machine.ClassIConst:
		fmt.Fprintf(&b, " %d", o.IImm)
	case machine.ClassFCmp, machine.ClassICmp:
		fmt.Fprintf(&b, ".%v", Pred(o.IImm))
	}
	for _, s := range o.Src {
		fmt.Fprintf(&b, " r%d", s)
	}
	if o.Mem != nil {
		fmt.Fprintf(&b, " [%s]", o.Mem.Array)
	}
	return b.String()
}

// Stmt is a statement in a structured block: an operation, a conditional,
// or a counted loop.
type Stmt interface{ isStmt() }

// OpStmt wraps a single operation.
type OpStmt struct{ Op *Op }

// IfStmt is a structured conditional on an int register (0 = false).
type IfStmt struct {
	Cond VReg
	Then *Block
	Else *Block // may be empty, never nil after Build
}

// LoopStmt is a counted loop.  The trip count is CountReg when it is not
// NoReg (a runtime value, evaluated once on entry), otherwise CountImm.
// A zero or negative count executes the body zero times.
type LoopStmt struct {
	ID       int
	CountReg VReg
	CountImm int64
	Body     *Block
	// NoPipeline forces the backend to skip software pipelining for this
	// loop (used by tests and by the frontend's `nopipeline` pragma).
	NoPipeline bool
	// Independent asserts that iterations carry no memory dependences
	// (the paper's "compiler directives to disambiguate array
	// references", Table 4-2); the dependence builder then drops
	// loop-carried memory edges.
	Independent bool
	// ForceUnroll marks the loop for full expansion before scheduling
	// (the `unroll` source directive), independent of the compiler-wide
	// unroll threshold.  Only constant-trip, loop-free bodies qualify.
	ForceUnroll bool
}

// Block is a sequence of statements.
type Block struct{ Stmts []Stmt }

func (*OpStmt) isStmt()   {}
func (*IfStmt) isStmt()   {}
func (*LoopStmt) isStmt() {}

// ArrayDecl declares a memory-resident array.
type ArrayDecl struct {
	Name string
	Kind Kind
	Size int
	// InitF/InitI optionally preset the contents (length <= Size).
	InitF []float64
	InitI []int64
}

// ScalarResult names a register whose final value is an observable output
// of the program (used by differential tests and result printing).
type ScalarResult struct {
	Name string
	Reg  VReg
}

// Program is a complete compilation unit: declarations plus one body.
type Program struct {
	Name    string
	Arrays  []*ArrayDecl
	Results []ScalarResult
	Body    *Block

	// RegKind[r] is the kind of virtual register r; len(RegKind) is the
	// number of registers allocated so far.
	RegKind []Kind

	nextOpID   int
	nextLoopID int
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Body: &Block{}}
}

// NewReg allocates a fresh virtual register of kind k.
func (p *Program) NewReg(k Kind) VReg {
	p.RegKind = append(p.RegKind, k)
	return VReg(len(p.RegKind) - 1)
}

// NumRegs reports how many virtual registers exist.
func (p *Program) NumRegs() int { return len(p.RegKind) }

// Kind returns the kind of register r.
func (p *Program) Kind(r VReg) Kind { return p.RegKind[r] }

// NewOp allocates an op with a fresh ID.
func (p *Program) NewOp(class machine.Class) *Op {
	o := &Op{ID: p.nextOpID, Class: class, Dst: NoReg}
	p.nextOpID++
	return o
}

// CloneOp returns a deep copy of o carrying a fresh operation ID, for
// passes that duplicate code (e.g. inner-loop unrolling).
func (p *Program) CloneOp(o *Op) *Op {
	c := o.Clone()
	c.ID = p.nextOpID
	p.nextOpID++
	return c
}

// NewLoopID allocates a fresh loop identifier.
func (p *Program) NewLoopID() int {
	id := p.nextLoopID
	p.nextLoopID++
	return id
}

// Clone returns a deep copy of the program: mutating passes (e.g. the
// unroll pass in codegen) clone first so that compilation never writes
// through a caller-owned program, which keeps one *Program safe to
// compile from many goroutines concurrently.
func (p *Program) Clone() *Program {
	c := &Program{
		Name:       p.Name,
		RegKind:    append([]Kind(nil), p.RegKind...),
		nextOpID:   p.nextOpID,
		nextLoopID: p.nextLoopID,
		Results:    append([]ScalarResult(nil), p.Results...),
		Body:       cloneBlock(p.Body),
	}
	if p.Arrays != nil {
		c.Arrays = make([]*ArrayDecl, len(p.Arrays))
		for i, a := range p.Arrays {
			d := *a
			d.InitF = append([]float64(nil), a.InitF...)
			d.InitI = append([]int64(nil), a.InitI...)
			c.Arrays[i] = &d
		}
	}
	return c
}

func cloneBlock(b *Block) *Block {
	if b == nil {
		return nil
	}
	c := &Block{}
	if b.Stmts != nil {
		c.Stmts = make([]Stmt, len(b.Stmts))
		for i, s := range b.Stmts {
			switch s := s.(type) {
			case *OpStmt:
				c.Stmts[i] = &OpStmt{Op: s.Op.Clone()}
			case *IfStmt:
				c.Stmts[i] = &IfStmt{Cond: s.Cond, Then: cloneBlock(s.Then), Else: cloneBlock(s.Else)}
			case *LoopStmt:
				l := *s
				l.Body = cloneBlock(s.Body)
				c.Stmts[i] = &l
			}
		}
	}
	return c
}

// Array returns the declaration of the named array, or nil.
func (p *Program) Array(name string) *ArrayDecl {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AddArray declares an array and returns it.
func (p *Program) AddArray(name string, kind Kind, size int) *ArrayDecl {
	a := &ArrayDecl{Name: name, Kind: kind, Size: size}
	p.Arrays = append(p.Arrays, a)
	return a
}

// Ops returns the operations of a straight-line block; it returns ok=false
// if the block contains control flow.
func (b *Block) Ops() (ops []*Op, ok bool) {
	for _, s := range b.Stmts {
		o, isOp := s.(*OpStmt)
		if !isOp {
			return nil, false
		}
		ops = append(ops, o.Op)
	}
	return ops, true
}

// Validate checks structural invariants: register kinds consistent with op
// classes, operand counts, memory ops annotated, loop counts sane.
func (p *Program) Validate(m *machine.Machine) error {
	return p.validateBlock(p.Body, m)
}

func (p *Program) validateBlock(b *Block, m *machine.Machine) error {
	for _, s := range b.Stmts {
		switch s := s.(type) {
		case *OpStmt:
			if err := p.validateOp(s.Op, m); err != nil {
				return err
			}
		case *IfStmt:
			if s.Cond == NoReg || int(s.Cond) >= p.NumRegs() || p.Kind(s.Cond) != KindInt {
				return fmt.Errorf("if: bad condition register r%d", s.Cond)
			}
			if s.Then == nil || s.Else == nil {
				return fmt.Errorf("if: nil branch block")
			}
			if err := p.validateBlock(s.Then, m); err != nil {
				return err
			}
			if err := p.validateBlock(s.Else, m); err != nil {
				return err
			}
		case *LoopStmt:
			if s.CountReg != NoReg && p.Kind(s.CountReg) != KindInt {
				return fmt.Errorf("loop %d: count register r%d is not int", s.ID, s.CountReg)
			}
			if s.Body == nil {
				return fmt.Errorf("loop %d: nil body", s.ID)
			}
			if err := p.validateBlock(s.Body, m); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown statement type %T", s)
		}
	}
	return nil
}

func (p *Program) validateOp(o *Op, m *machine.Machine) error {
	if m.Desc(o.Class) == nil {
		return fmt.Errorf("op %d: class %v unsupported on %s", o.ID, o.Class, m.Name)
	}
	check := func(r VReg, want Kind, what string) error {
		if r == NoReg || int(r) >= p.NumRegs() {
			return fmt.Errorf("op %d (%v): bad %s register r%d", o.ID, o.Class, what, r)
		}
		if p.Kind(r) != want {
			return fmt.Errorf("op %d (%v): %s register r%d is %v, want %v", o.ID, o.Class, what, r, p.Kind(r), want)
		}
		return nil
	}
	wantSrc := func(n int) error {
		if len(o.Src) != n {
			return fmt.Errorf("op %d (%v): have %d operands, want %d", o.ID, o.Class, len(o.Src), n)
		}
		return nil
	}
	switch o.Class {
	case machine.ClassFAdd, machine.ClassFSub, machine.ClassFMul:
		if err := wantSrc(2); err != nil {
			return err
		}
		for _, s := range o.Src {
			if err := check(s, KindFloat, "source"); err != nil {
				return err
			}
		}
		return check(o.Dst, KindFloat, "dest")
	case machine.ClassFNeg, machine.ClassFMov, machine.ClassFRecipSeed, machine.ClassFRsqrtSeed:
		if err := wantSrc(1); err != nil {
			return err
		}
		if err := check(o.Src[0], KindFloat, "source"); err != nil {
			return err
		}
		return check(o.Dst, KindFloat, "dest")
	case machine.ClassF2I:
		if err := wantSrc(1); err != nil {
			return err
		}
		if err := check(o.Src[0], KindFloat, "source"); err != nil {
			return err
		}
		return check(o.Dst, KindInt, "dest")
	case machine.ClassI2F:
		if err := wantSrc(1); err != nil {
			return err
		}
		if err := check(o.Src[0], KindInt, "source"); err != nil {
			return err
		}
		return check(o.Dst, KindFloat, "dest")
	case machine.ClassFConst:
		if err := wantSrc(0); err != nil {
			return err
		}
		return check(o.Dst, KindFloat, "dest")
	case machine.ClassRecv:
		if err := wantSrc(0); err != nil {
			return err
		}
		return check(o.Dst, KindFloat, "dest")
	case machine.ClassSend:
		if err := wantSrc(1); err != nil {
			return err
		}
		if o.Dst != NoReg {
			return fmt.Errorf("op %d: send with destination", o.ID)
		}
		return check(o.Src[0], KindFloat, "value")
	case machine.ClassFCmp:
		if err := wantSrc(2); err != nil {
			return err
		}
		for _, s := range o.Src {
			if err := check(s, KindFloat, "source"); err != nil {
				return err
			}
		}
		return check(o.Dst, KindInt, "dest")
	case machine.ClassIAdd, machine.ClassISub, machine.ClassIMul, machine.ClassICmp, machine.ClassAdrAdd:
		if err := wantSrc(2); err != nil {
			return err
		}
		for _, s := range o.Src {
			if err := check(s, KindInt, "source"); err != nil {
				return err
			}
		}
		return check(o.Dst, KindInt, "dest")
	case machine.ClassIMov:
		if err := wantSrc(1); err != nil {
			return err
		}
		if err := check(o.Src[0], KindInt, "source"); err != nil {
			return err
		}
		return check(o.Dst, KindInt, "dest")
	case machine.ClassIConst:
		if err := wantSrc(0); err != nil {
			return err
		}
		return check(o.Dst, KindInt, "dest")
	case machine.ClassISelect:
		if err := wantSrc(3); err != nil {
			return err
		}
		if err := check(o.Src[0], KindInt, "condition"); err != nil {
			return err
		}
		k := p.Kind(o.Dst)
		if err := check(o.Src[1], k, "source"); err != nil {
			return err
		}
		return check(o.Src[2], k, "source")
	case machine.ClassLoad:
		if err := wantSrc(1); err != nil {
			return err
		}
		if o.Mem == nil || p.Array(o.Mem.Array) == nil {
			return fmt.Errorf("op %d: load without valid memory annotation", o.ID)
		}
		if err := check(o.Src[0], KindInt, "address"); err != nil {
			return err
		}
		return check(o.Dst, p.Array(o.Mem.Array).Kind, "dest")
	case machine.ClassStore:
		if err := wantSrc(2); err != nil {
			return err
		}
		if o.Mem == nil || p.Array(o.Mem.Array) == nil {
			return fmt.Errorf("op %d: store without valid memory annotation", o.ID)
		}
		if err := check(o.Src[0], KindInt, "address"); err != nil {
			return err
		}
		if o.Dst != NoReg {
			return fmt.Errorf("op %d: store with destination", o.ID)
		}
		return check(o.Src[1], p.Array(o.Mem.Array).Kind, "value")
	default:
		return fmt.Errorf("op %d: class %v not valid in IR bodies", o.ID, o.Class)
	}
}

// String pretty-prints the whole program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "  array %s: %v[%d]\n", a.Name, a.Kind, a.Size)
	}
	p.printBlock(&b, p.Body, 1)
	return b.String()
}

func (p *Program) printBlock(b *strings.Builder, blk *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range blk.Stmts {
		switch s := s.(type) {
		case *OpStmt:
			fmt.Fprintf(b, "%s%s\n", ind, s.Op)
		case *IfStmt:
			fmt.Fprintf(b, "%sif r%d {\n", ind, s.Cond)
			p.printBlock(b, s.Then, depth+1)
			if len(s.Else.Stmts) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				p.printBlock(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *LoopStmt:
			if s.CountReg != NoReg {
				fmt.Fprintf(b, "%sloop %d times r%d {\n", ind, s.ID, s.CountReg)
			} else {
				fmt.Fprintf(b, "%sloop %d times %d {\n", ind, s.ID, s.CountImm)
			}
			p.printBlock(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		}
	}
}
