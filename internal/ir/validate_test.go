package ir

import (
	"strings"
	"testing"

	"softpipe/internal/machine"
)

// TestValidateRejections drives Program.Validate through every rejection
// class: wrong register kinds, bad operand counts, missing memory
// annotations, malformed structured statements.
func TestValidateRejections(t *testing.T) {
	m := machine.Warp()
	cases := []struct {
		name  string
		build func(p *Program) // p starts with f0..f1 float, i0..i1 int, array "a"
		want  string
	}{
		{
			name: "fadd int source",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassFAdd)
				o.Dst = 0
				o.Src = []VReg{0, 2} // r2 is int
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "want float",
		},
		{
			name: "fadd wrong arity",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassFAdd)
				o.Dst = 0
				o.Src = []VReg{0}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "want 2",
		},
		{
			name: "fadd dest missing",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassFAdd)
				o.Src = []VReg{0, 1}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "bad dest register",
		},
		{
			name: "register out of range",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassFMov)
				o.Dst = 0
				o.Src = []VReg{99}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "bad source register",
		},
		{
			name: "load without mem annotation",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassLoad)
				o.Dst = 0
				o.Src = []VReg{2}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "without valid memory annotation",
		},
		{
			name: "load from unknown array",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassLoad)
				o.Dst = 0
				o.Src = []VReg{2}
				o.Mem = &MemRef{Array: "nope"}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "without valid memory annotation",
		},
		{
			name: "load float address",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassLoad)
				o.Dst = 0
				o.Src = []VReg{1} // float reg as address
				o.Mem = &MemRef{Array: "a"}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "address register",
		},
		{
			name: "store with destination",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassStore)
				o.Dst = 0
				o.Src = []VReg{2, 0}
				o.Mem = &MemRef{Array: "a"}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "store with destination",
		},
		{
			name: "store int value into float array",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassStore)
				o.Dst = NoReg
				o.Src = []VReg{2, 3} // value r3 is int, array is float
				o.Mem = &MemRef{Array: "a"}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "want float",
		},
		{
			name: "send with destination",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassSend)
				o.Dst = 0
				o.Src = []VReg{0}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "send with destination",
		},
		{
			name: "iselect mixed operand kinds",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassISelect)
				o.Dst = 0               // float dest
				o.Src = []VReg{2, 0, 3} // r3 int, dest float
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "want float",
		},
		{
			name: "if condition is float",
			build: func(p *Program) {
				p.Body.Stmts = append(p.Body.Stmts, &IfStmt{Cond: 0, Then: &Block{}, Else: &Block{}})
			},
			want: "bad condition register",
		},
		{
			name: "if nil arm",
			build: func(p *Program) {
				p.Body.Stmts = append(p.Body.Stmts, &IfStmt{Cond: 2, Then: &Block{}})
			},
			want: "nil branch block",
		},
		{
			name: "loop float count register",
			build: func(p *Program) {
				p.Body.Stmts = append(p.Body.Stmts, &LoopStmt{CountReg: 0, Body: &Block{}})
			},
			want: "not int",
		},
		{
			name: "loop nil body",
			build: func(p *Program) {
				p.Body.Stmts = append(p.Body.Stmts, &LoopStmt{CountReg: NoReg, CountImm: 3})
			},
			want: "nil body",
		},
		{
			name: "bad op inside loop inside if",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassIAdd)
				o.Dst = 2
				o.Src = []VReg{2, 0} // float source
				inner := &LoopStmt{CountReg: NoReg, CountImm: 2,
					Body: &Block{Stmts: []Stmt{&OpStmt{Op: o}}}}
				p.Body.Stmts = append(p.Body.Stmts,
					&IfStmt{Cond: 2, Then: &Block{Stmts: []Stmt{inner}}, Else: &Block{}})
			},
			want: "want int",
		},
		{
			name: "object-only class rejected in IR",
			build: func(p *Program) {
				o := p.NewOp(machine.ClassIAnd)
				o.Dst = 2
				o.Src = []VReg{2}
				p.Body.Stmts = append(p.Body.Stmts, &OpStmt{Op: o})
			},
			want: "not valid in IR bodies",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewProgram("v")
			p.NewReg(KindFloat) // r0
			p.NewReg(KindFloat) // r1
			p.NewReg(KindInt)   // r2
			p.NewReg(KindInt)   // r3
			p.AddArray("a", KindFloat, 8)
			tc.build(p)
			err := p.Validate(m)
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts: a program touching every op family must pass.
func TestValidateAccepts(t *testing.T) {
	b := NewBuilder("ok")
	b.Array("a", KindFloat, 8)
	b.Array("n", KindInt, 8)
	f := b.FConst(2)
	i := b.IConst(3)
	b.ForN(4, func(l *LoopCtx) {
		p := l.Pointer(0, 1)
		v := b.Load("a", p, Aff(l.ID, 1, 0))
		w := b.FAdd(b.FMul(v, f), b.FNeg(v))
		c := b.FCmp(PredGT, w, f)
		s := b.Select(c, w, v)
		b.Store("a", p, s, Aff(l.ID, 1, 0))
		k := b.Load("n", p, Aff(l.ID, 1, 0))
		b.Store("n", p, b.IAdd(k, i), Aff(l.ID, 1, 0))
		b.Send(b.Recv())
	})
	if err := b.P.Validate(machine.Warp()); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}
