module softpipe

go 1.22
