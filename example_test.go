package softpipe_test

import (
	"fmt"
	"log"

	"softpipe"
)

// ExampleCompileSource compiles the paper's vector-update example and
// reports the initiation interval the modulo scheduler proves.
func ExampleCompileSource() {
	src := `
program vadd;
var a, c: array [0..99] of real;
    i: int;
begin
  for i := 0 to 99 do
    c[i] := a[i] + 1.0;
end.
`
	obj, err := softpipe.CompileSource(src, softpipe.Warp(), softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	loop := obj.Report.Loops[0]
	fmt.Printf("pipelined=%v II=%d met-lower-bound=%v\n", loop.Pipelined, loop.II, loop.MetLower)
	// Output:
	// pipelined=true II=1 met-lower-bound=true
}

// ExampleObject_Verify runs a compiled program on the cycle-accurate
// cell model and checks it against the reference interpreter.
func ExampleObject_Verify() {
	src := `
program dot;
var x, y: array [0..49] of real;
    q: real;
    k: int;
begin
  q := 0.0;
  for k := 0 to 49 do
    q := q + x[k]*y[k];
end.
`
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	xs, ys := prog.Array("x"), prog.Array("y")
	for i := 0; i < 50; i++ {
		xs.InitF = append(xs.InitF, 1)
		ys.InitF = append(ys.InitF, 2)
	}
	obj, err := softpipe.Compile(prog, softpipe.Warp(), softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := obj.Verify()
	if err != nil {
		log.Fatal(err)
	}
	// The accumulation is bound by the 7-cycle adder: II = 7.
	fmt.Printf("q = %v, II = %d\n", res.State.Scalars["q"], obj.Report.Loops[0].II)

	// Output:
	// q = 100, II = 7
}

// The report carries a rendering of each pipelined loop's steady-state
// modulo schedule, one row per initiation-interval offset (the paper's
// Figure 2-2 view).
func ExampleLoopInfo_kernel() {
	src := `
program vadd;
var x, y: array [0..99] of real;
    i: int;
begin
  for i := 0 to 99 do
    y[i] := x[i] + 1.0;
end.
`
	obj, err := softpipe.CompileSource(src, softpipe.Warp(), softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(obj.Report.Loops[0].Kernel)

	// Output:
	// II=1 stages=11 unroll=1  (MII=1: res=1 rec=1)
	//   t%1=0 | s0:adradd  s0:iadd  s0:load[x]  s3:fadd  s10:adradd  s10:store[y]
}
