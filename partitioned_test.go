package softpipe

import (
	"strings"
	"testing"

	"softpipe/internal/workloads"
)

func buildKernel(t *testing.T, id int) *Program {
	t.Helper()
	for _, k := range workloads.Livermore() {
		if k.ID == id {
			p, err := k.Build()
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
	}
	t.Fatalf("kernel %d not in corpus", id)
	return nil
}

func TestCompilePartitionedK1(t *testing.T) {
	p := buildKernel(t, 1)
	ao, err := CompilePartitioned(p, Machines(Warp(), 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ao.Width() != 2 {
		t.Fatalf("width %d", ao.Width())
	}
	if err := ao.Verify(nil); err != nil {
		t.Fatal(err)
	}
	res, err := ao.RunArray(nil, EngineInterp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CellStats) != 2 {
		t.Fatalf("cell stats %v", res.CellStats)
	}
	for i, cs := range res.CellStats {
		if cs.II <= 0 {
			t.Errorf("cell %d II = %d", i, cs.II)
		}
	}
	// §4.1: after the setup skew, a balanced array never stalls — each
	// cell's stall total must stay a small fraction of the wall clock.
	for i, cs := range res.CellStats {
		if cs.StallCycles > res.Cycles/2 {
			t.Errorf("cell %d stalled %d of %d cycles", i, cs.StallCycles, res.Cycles)
		}
	}
}

func TestCompileSourcePartitionedRejectsShapes(t *testing.T) {
	src := `program two;
const n = 8;
var a: array [0..7] of real; i: int;
begin
  for i := 0 to n-1 do a[i] := a[i] + 1.0;
  for i := 0 to n-1 do a[i] := a[i] * 2.0;
end.`
	_, err := CompileSourcePartitioned(src, Machines(Warp(), 2), Options{})
	if err == nil || !strings.Contains(err.Error(), "more than one top-level loop") {
		t.Fatalf("expected shape rejection, got %v", err)
	}
}
