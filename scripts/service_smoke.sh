#!/usr/bin/env bash
# service_smoke.sh: end-to-end check of the compile service.  Builds
# softpiped and softpipe-load, starts the daemon with a disk cache tier,
# runs the load harness's deterministic smoke assertions plus a short
# replay, and asserts: /healthz answers OK, /metrics parses with zero
# recovered panics, the warm hit rate is 100%, N concurrent identical
# requests ran exactly one compile, and the replay error count is zero.
#
#   scripts/service_smoke.sh [report-out]   (default BENCH_service.json)
set -euo pipefail

out="${1:-BENCH_service.json}"
addr="127.0.0.1:8575"
cache_dir="$(mktemp -d)"
bin_dir="$(mktemp -d)"

go build -o "$bin_dir/softpiped" ./cmd/softpiped
go build -o "$bin_dir/softpipe-load" ./cmd/softpipe-load

"$bin_dir/softpiped" -addr "$addr" -cache-dir "$cache_dir" -quiet &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$cache_dir" "$bin_dir"' EXIT

for _ in $(seq 1 50); do
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null  # liveness gate

# Smoke assertions (exit non-zero on any failure) + a 5s paced replay.
"$bin_dir/softpipe-load" -addr "http://$addr" -smoke \
  -duration 5s -rps 100 -concurrency 8 -out "$out"

# /metrics parses and the daemon recovered no panics.
curl -fsS "http://$addr/metrics" | python3 -c \
  'import json,sys; m=json.load(sys.stdin); assert m["panics"]==0, m'

# Replay error rate must be zero; smoke invariants must hold.
python3 - "$out" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
replay, smoke = rep["replay"], rep["smoke"]
assert replay["requests"] > 0, replay
assert replay["errors"] == 0, replay
assert smoke["passed"], smoke
assert smoke["warm_hit_rate"] == 1.0, smoke
assert smoke["singleflight_computes"] == 1, smoke
print("service smoke OK: %d requests, 0 errors, hit rate %.0f%%, p95 %.1fms"
      % (replay["requests"], 100*replay["hit_rate"],
         replay["latency_ms"]["p95_ms"]))
EOF

# Graceful drain: SIGTERM must exit cleanly after finishing in-flight work.
kill -TERM "$pid"
wait "$pid"
