#!/usr/bin/env bash
# Array-partitioning smoke for CI: cut saxpy and a Livermore kernel
# across a 2-cell array with full verification (per-cell provenance
# against the single-cell reference plus the both-engine differential),
# and require the two simulator engines' printed runs to be
# byte-identical.  Then run the full array measurement (warpbench
# -array) at width 2 and hold the checked-in acceptance bar: every row
# verified and at least one kernel at >= 1.5x single-cell throughput.
#
#   bash scripts/array_smoke.sh [BENCH_array_ci.json]
set -euo pipefail
cd "$(dirname "$0")/.."

array_json="${1:-BENCH_array_ci.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go run ./scripts/simcheck -emit-kernel k12-first-difference -o "$tmp/k12.w2"

for src in testdata/saxpy.w2 "$tmp/k12.w2"; do
  name="$(basename "$src")"
  go run ./cmd/w2c -cells 2 -partition -verify -engine interp "$src" >"$tmp/$name.interp"
  go run ./cmd/w2c -cells 2 -partition -verify -engine compiled "$src" >"$tmp/$name.compiled"
  if ! diff -u "$tmp/$name.interp" "$tmp/$name.compiled"; then
    echo "array_smoke: engines disagree on $name" >&2
    exit 1
  fi
  if ! grep -q "verified: partitioned array equivalent" "$tmp/$name.interp"; then
    echo "array_smoke: $name did not verify" >&2
    exit 1
  fi
done

go run ./cmd/warpbench -array -cells 2 -arrayout "$array_json"

python3 - "$array_json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
s = rep["summary"]
if s["rows"] == 0:
    sys.exit("array_smoke: nothing partitioned at width 2")
if s["verified"] != s["rows"]:
    sys.exit(f"array_smoke: only {s['verified']} of {s['rows']} rows verified")
if s["best_speedup"] < 1.5:
    sys.exit(f"array_smoke: best speedup {s['best_speedup']:.2f}x below the 1.5x bar")
print(f"array_smoke: {s['rows']} rows verified, best {s['best_speedup']:.2f}x "
      f"({s['best_workload']} at {s['best_cells']} cells)")
EOF
