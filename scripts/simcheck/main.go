// Command simcheck validates the engine-related invariants of the
// harness baseline (BENCH_harness.json) without external tooling, and
// emits Livermore kernel sources for CLI-level differential smoke runs
// (scripts/sim_smoke.sh):
//
//	simcheck -bench bench_harness_ci.json
//	simcheck -emit-kernel k1-hydro -o hydro.w2
//
// The -bench mode fails when the compiled engine is slower than the
// interpreter, when batch throughput is missing, or when the parallel
// speedup field violates the honesty rule: it must be present exactly
// when parallel_measured is true, and a single-CPU host must never
// claim a measured speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"softpipe/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simcheck: ")
	benchPath := flag.String("bench", "", "harness baseline JSON to validate")
	emit := flag.String("emit-kernel", "", "write this Livermore kernel's W2 source and exit")
	out := flag.String("o", "", "output path for -emit-kernel")
	flag.Parse()

	switch {
	case *emit != "":
		if *out == "" {
			log.Fatal("-emit-kernel needs -o out.w2")
		}
		for _, k := range workloads.Livermore() {
			if k.Name == *emit {
				if err := os.WriteFile(*out, []byte(k.Source), 0o644); err != nil {
					log.Fatal(err)
				}
				return
			}
		}
		log.Fatalf("unknown Livermore kernel %q", *emit)
	case *benchPath != "":
		if err := checkBench(*benchPath); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("usage: simcheck -bench file.json | -emit-kernel name -o file.w2")
	}
}

func checkBench(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b struct {
		NumCPU           int      `json:"num_cpu"`
		ParallelMeasured bool     `json:"parallel_measured"`
		SuiteSpeedup     *float64 `json:"suite_parallel_speedup"`
		SimNs            float64  `json:"sim_ns_per_cycle"`
		CompiledNs       float64  `json:"sim_compiled_ns_per_cycle"`
		EngineSpeedup    float64  `json:"sim_engine_speedup"`
		BatchRPS         float64  `json:"batch_runs_per_sec"`
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if b.SimNs <= 0 || b.CompiledNs <= 0 {
		return fmt.Errorf("%s: missing engine timings (interp %.1f ns, compiled %.1f ns)", path, b.SimNs, b.CompiledNs)
	}
	if b.CompiledNs > b.SimNs {
		return fmt.Errorf("%s: compiled engine slower than interpreter (%.1f vs %.1f ns/cycle)", path, b.CompiledNs, b.SimNs)
	}
	if b.BatchRPS <= 0 {
		return fmt.Errorf("%s: batch_runs_per_sec missing or zero", path)
	}
	if b.ParallelMeasured != (b.SuiteSpeedup != nil) {
		return fmt.Errorf("%s: parallel_measured=%v but suite_parallel_speedup present=%v", path, b.ParallelMeasured, b.SuiteSpeedup != nil)
	}
	if b.NumCPU == 1 && b.ParallelMeasured {
		return fmt.Errorf("%s: single-CPU host claims a measured parallel speedup", path)
	}
	fmt.Printf("simcheck: %s ok (interp %.1f ns/cycle, compiled %.1f ns/cycle, %.2fx, batch %.0f runs/s)\n",
		path, b.SimNs, b.CompiledNs, b.EngineSpeedup, b.BatchRPS)
	return nil
}
