#!/usr/bin/env bash
# Machine-sweep smoke for CI: compile the smoke corpus across a 4-point
# machine grid — two configurations, each with and without a rotating
# register file — with full verification (independent object-code
# checker plus a differential run against the IR interpreter on every
# cell).  warpbench -sweep itself enforces the rotating invariants
# (reported rotating flag matches the machine; MVE unroll collapses to 1
# on rotating points); the JSON check below asserts the artifact shape
# the checked-in BENCH_sweep.json relies on.
#
#   bash scripts/sweep_smoke.sh [BENCH_sweep_ci.json]
set -euo pipefail
cd "$(dirname "$0")/.."

sweep_json="${1:-BENCH_sweep_ci.json}"
grid="gen:fa1,fm1,mem1;gen:fa1,fm1,mem1,rot;gen:fa2,fm2,mem2;gen:fa2,fm2,mem2,rot"

go run ./cmd/warpbench -sweep -sweepset smoke -machines "$grid" -sweepout "$sweep_json"

python3 - "$sweep_json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
machines = rep["machines"]
if len(machines) != 4:
    sys.exit(f"sweep_smoke: expected 4 grid points, got {len(machines)}")
if not rep["verified"]:
    sys.exit("sweep_smoke: sweep ran unverified")
fps = set()
rotating = 0
for m in machines:
    if m["fingerprint"] in fps:
        sys.exit(f"sweep_smoke: fingerprint collision on {m['machine']}")
    fps.add(m["fingerprint"])
    if m["pipelined"] == 0:
        sys.exit(f"sweep_smoke: nothing pipelined on {m['machine']}")
    if m["rotating"]:
        rotating += 1
        if m["max_unroll"] > 1:
            sys.exit(f"sweep_smoke: MVE unroll {m['max_unroll']} on rotating {m['machine']}")
if rotating != 2:
    sys.exit(f"sweep_smoke: expected 2 rotating grid points, got {rotating}")
pairs = {m["machine"].replace(",rot", ""): m for m in machines if m["rotating"]}
for m in machines:
    if not m["rotating"]:
        rot = pairs.get(m["machine"])
        if rot is None:
            sys.exit(f"sweep_smoke: {m['machine']} has no rotating partner")
        print(f"sweep_smoke: {m['machine']}: "
              f"MVE unroll<={m['max_unroll']} copy {m['copy_regs_f']}F -> "
              f"rot unroll<={rot['max_unroll']} ring {rot['copy_regs_f']}F")
print(f"sweep_smoke: {len(machines)} machines OK, all verified")
EOF
