// Command tracecheck validates a Chrome trace_event JSON file produced
// by the -trace flag of w2c, livermore, or warpbench (CI runs it on a
// fresh trace to keep the format loadable by chrome://tracing and
// Perfetto).  It checks the envelope and every event:
//
//   - the document is a JSON object with a traceEvents array
//   - every event has a name and a phase in {X, C, M}
//   - complete events (X) carry non-negative ts and dur
//   - counter events (C) carry non-negative ts and at least one arg
//   - at least one metadata record names the process
//
// Usage: tracecheck trace.json [trace2.json ...]
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
)

type event struct {
	Name string                     `json:"name"`
	Ph   string                     `json:"ph"`
	TS   *int64                     `json:"ts"`
	Dur  *int64                     `json:"dur"`
	PID  *int64                     `json:"pid"`
	TID  *int64                     `json:"tid"`
	Args map[string]json.RawMessage `json:"args"`
}

type document struct {
	TraceEvents []event `json:"traceEvents"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: tracecheck trace.json [more.json ...]")
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			log.Fatalf("%s: %v", path, err)
		}
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("not a trace_event JSON object: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("missing traceEvents array")
	}
	spans, counters, metas := 0, 0, 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("event %d has no name", i)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.TS == nil || *e.TS < 0 {
				return fmt.Errorf("event %d (%s): X event needs ts >= 0", i, e.Name)
			}
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("event %d (%s): X event needs dur >= 0", i, e.Name)
			}
		case "C":
			counters++
			if e.TS == nil || *e.TS < 0 {
				return fmt.Errorf("event %d (%s): C event needs ts >= 0", i, e.Name)
			}
			if len(e.Args) == 0 {
				return fmt.Errorf("event %d (%s): C event needs a sampled value in args", i, e.Name)
			}
		case "M":
			metas++
			if e.Dur != nil {
				return fmt.Errorf("event %d (%s): M event must not carry dur", i, e.Name)
			}
		default:
			return fmt.Errorf("event %d (%s): unsupported phase %q", i, e.Name, e.Ph)
		}
	}
	if metas == 0 {
		return fmt.Errorf("no metadata record (process_name) present")
	}
	fmt.Printf("tracecheck: %s ok: %d spans, %d counter samples, %d metadata records\n",
		path, spans, counters, metas)
	return nil
}
