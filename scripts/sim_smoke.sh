#!/usr/bin/env bash
# Engine differential smoke for CI: w2c must print byte-identical
# results under -engine interp and -engine compiled on saxpy and a
# Livermore kernel, and the harness baseline must show the compiled
# engine no slower than the interpreter (scripts/simcheck).
#
#   bash scripts/sim_smoke.sh [bench_harness_ci.json]
set -euo pipefail
cd "$(dirname "$0")/.."

bench_json="${1:-bench_harness_ci.json}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go run ./scripts/simcheck -emit-kernel k1-hydro -o "$tmp/k1-hydro.w2"

for src in testdata/saxpy.w2 "$tmp/k1-hydro.w2"; do
  go run ./cmd/w2c -run -engine interp "$src" >"$tmp/interp.txt"
  go run ./cmd/w2c -run -engine compiled "$src" >"$tmp/compiled.txt"
  if ! diff -u "$tmp/interp.txt" "$tmp/compiled.txt"; then
    echo "sim_smoke: engines diverge on $src" >&2
    exit 1
  fi
  echo "sim_smoke: engines agree on $src"
done

go run ./scripts/simcheck -bench "$bench_json"
