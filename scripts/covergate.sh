#!/usr/bin/env bash
# covergate.sh: run the full test suite with a coverage profile and fail
# if any gated package falls below the floor.
#
#   scripts/covergate.sh [profile-out]
#
# Gated packages (75% statement coverage each): the scheduler, the code
# generator, and the independent object-code verifier — the three layers
# whose regressions silently corrupt emitted code.
set -euo pipefail

profile="${1:-coverage.out}"
floor=75.0
gated=(
  softpipe/internal/schedule
  softpipe/internal/codegen
  softpipe/internal/verify
)

summary="$(mktemp)"
trap 'rm -f "$summary"' EXIT

go test -coverprofile="$profile" -covermode=atomic ./... | tee "$summary"

fail=0
for pkg in "${gated[@]}"; do
  pct="$(awk -v pkg="$pkg" '$1 == "ok" && $2 == pkg {
    for (i = 3; i <= NF; i++) if ($i ~ /^[0-9.]+%$/) { sub(/%$/, "", $i); print $i; exit }
  }' "$summary")"
  if [ -z "$pct" ]; then
    echo "covergate: no coverage line for $pkg" >&2
    fail=1
    continue
  fi
  if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
    echo "covergate: $pkg at ${pct}% is below the ${floor}% floor" >&2
    fail=1
  else
    echo "covergate: $pkg at ${pct}% (floor ${floor}%)"
  fi
done
exit "$fail"
