#!/usr/bin/env bash
# Optimality-gap smoke for CI: compile the smoke corpus (saxpy plus
# Livermore kernel 18, the resource-bound 2-D hydro fragment) under both
# scheduler backends with full verification.  warpbench -gap exits
# nonzero if the exact backend ever lands above the heuristic on any
# loop, or if either backend's output fails the independent verifier or
# diverges from the IR interpreter.
#
#   bash scripts/gap_smoke.sh [BENCH_gap_ci.json]
set -euo pipefail
cd "$(dirname "$0")/.."

gap_json="${1:-BENCH_gap_ci.json}"

go run ./cmd/warpbench -gap -gapset smoke -effort-budget 30s -gapout "$gap_json"

# The smoke corpus must actually have measured something: saxpy's single
# loop plus at least one k18 loop.
python3 - "$gap_json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
loops = rep["loops"]
names = {l["workload"] for l in loops}
if "saxpy" not in names or "k18-2d-hydro" not in names:
    sys.exit(f"gap_smoke: corpus incomplete, got workloads {sorted(names)}")
for l in loops:
    if l["exact_ii"] > l["heuristic_ii"]:
        sys.exit(f"gap_smoke: exact II above heuristic on {l['workload']} loop {l['loop']}")
if not any(l["proved"] for l in loops):
    sys.exit("gap_smoke: exact backend proved nothing on the smoke corpus")
print(f"gap_smoke: {len(loops)} loops, "
      f"{sum(1 for l in loops if l['proved'])} proved optimal, "
      f"max gap {rep['summary']['max_gap']}")
EOF
