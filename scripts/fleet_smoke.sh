#!/usr/bin/env bash
# fleet_smoke.sh: end-to-end check of the sharded compile fabric.  Boots
# a 3-node in-process fleet via softpipe-load -fleet -smoke, which
# replays the corpus while killing the owner of a hot key mid-replay,
# watching the survivors' breakers open and (after a restart on the same
# port) close again, and drop-partitioning one node's artifact traffic.
# Asserts: zero client-visible errors across every phase, exactly one
# compile fleet-wide per unique key in the no-fault replay, and breaker
# recovery — the report records it all.
#
#   scripts/fleet_smoke.sh [report-out]   (default BENCH_fleet.json)
set -euo pipefail

out="${1:-BENCH_fleet.json}"
bin_dir="$(mktemp -d)"
trap 'rm -rf "$bin_dir"' EXIT

go build -o "$bin_dir/softpipe-load" ./cmd/softpipe-load

# The fleet, the fault schedule, and the final replay; exits non-zero on
# any in-harness assertion failure.
"$bin_dir/softpipe-load" -fleet 3 -smoke \
  -workload mixed -fuzz-n 8 -duration 5s -concurrency 8 -out "$out"

# Independent re-check of the report's robustness invariants.
python3 - "$out" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))["fleet"]
assert rep["smoke_passed"], rep.get("failures")
assert rep["errors"] == 0, "client-visible errors: %d" % rep["errors"]
assert rep["requests"] > 0, rep
assert rep["unique_keys"] > 0, rep
assert rep["computes"] == rep["unique_keys"], \
    "exactly-once violated: %d compiles for %d keys" % (rep["computes"], rep["unique_keys"])
assert rep["forwards"] > 0, "fabric never forwarded — nodes not sharded?"
assert rep["fallback_local_compiles"] > 0, \
    "fault phases never exercised the local-compile fallback"
want_phases = {"no-fault replay", "kill owner mid-replay",
               "breaker opens on dead peer", "restart and recover",
               "partition artifact traffic", "steady-state replay"}
assert want_phases <= set(rep["phases"]), rep["phases"]
print("fleet smoke OK: %d nodes, %d requests, 0 errors, %d keys = %d compiles, "
      "hit rate %.0f%%, p95 %.1fms"
      % (rep["nodes"], rep["requests"], rep["unique_keys"], rep["computes"],
         100*rep["hit_rate"], rep["latency_ms"]["p95_ms"]))
EOF
