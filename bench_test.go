// Benchmark harness: one benchmark per table and figure of Lam (PLDI
// 1988), plus ablations for the design choices DESIGN.md calls out.
// Benchmarks report reproduction metrics (MFLOPS, speedup, initiation
// intervals, code growth) via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's evaluation (see EXPERIMENTS.md for the
// paper-vs-measured record).
package softpipe_test

import (
	"fmt"
	"testing"

	"softpipe"
	"softpipe/internal/bench"
	"softpipe/internal/codegen"
	"softpipe/internal/depgraph"
	"softpipe/internal/hier"
	"softpipe/internal/ir"
	"softpipe/internal/machine"
	"softpipe/internal/pipeline"
	"softpipe/internal/sim"
	"softpipe/internal/workloads"
)

// --- Table 4-1: application kernels on the 10-cell array ---------------

func BenchmarkTable41(b *testing.B) {
	m := machine.Warp()
	for _, app := range workloads.Apps() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var last bench.RunResult
			for i := 0; i < b.N; i++ {
				p, err := app.Build()
				if err != nil {
					b.Fatal(err)
				}
				r, err := bench.Run(p, m, codegen.ModePipelined)
				if err != nil {
					b.Fatal(err)
				}
				last = *r
			}
			b.ReportMetric(last.ArrayMFLOPS, "MFLOPS")
			b.ReportMetric(app.PaperMFLOPS, "paperMFLOPS")
			b.ReportMetric(float64(last.Cycles), "cellCycles")
		})
	}
}

// BenchmarkTable41Systolic measures the paper's real matmul setup: the
// product streamed through the full 10-cell array (Table 4-1's 79.4
// MFLOPS entry).
func BenchmarkTable41Systolic(b *testing.B) {
	m := machine.Warp()
	var row bench.Table41Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.SystolicMatmulRow(m, 100, m.Cells)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.ArrayMFLOPS, "MFLOPS")
	b.ReportMetric(row.PaperMFLOPS, "paperMFLOPS")
	b.ReportMetric(float64(row.Cycles), "arrayCycles")
}

// --- Table 4-2: Livermore loops on one cell ----------------------------

func BenchmarkTable42(b *testing.B) {
	m := machine.Warp()
	for _, k := range workloads.Livermore() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			var mflops, eff, speedup float64
			for i := 0; i < b.N; i++ {
				p, err := k.Build()
				if err != nil {
					b.Fatal(err)
				}
				pipe, err := bench.Run(p, m, codegen.ModePipelined)
				if err != nil {
					b.Fatal(err)
				}
				p2, _ := k.Build()
				base, err := bench.Run(p2, m, codegen.ModeUnpipelined)
				if err != nil {
					b.Fatal(err)
				}
				mflops = pipe.CellMFLOPS
				eff = bench.WeightedEfficiency(pipe.Report)
				speedup = float64(base.Cycles) / float64(pipe.Cycles)
			}
			b.ReportMetric(mflops, "MFLOPS")
			b.ReportMetric(eff, "efficiencyLB")
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// --- Figures 4-1 and 4-2: the 72-program population --------------------

func BenchmarkFig41_MFLOPS(b *testing.B) {
	m := machine.Warp()
	var meanMF float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSuite(m, false, 0)
		if err != nil {
			b.Fatal(err)
		}
		s := 0.0
		for _, r := range res {
			s += r.ArrayMFLOPS
		}
		meanMF = s / float64(len(res))
	}
	b.ReportMetric(meanMF, "meanMFLOPS")
}

func BenchmarkFig42_Speedup(b *testing.B) {
	m := machine.Warp()
	var mean, condMean, noCondMean, metPct float64
	for i := 0; i < b.N; i++ {
		res, err := bench.RunSuite(m, false, 0)
		if err != nil {
			b.Fatal(err)
		}
		var s, sc, sn float64
		var nc, nn int
		for _, r := range res {
			s += r.Speedup
			if r.HasCond {
				sc += r.Speedup
				nc++
			} else {
				sn += r.Speedup
				nn++
			}
		}
		mean = s / float64(len(res))
		condMean = sc / float64(nc)
		noCondMean = sn / float64(nn)
		st := bench.Stats(res)
		metPct = 100 * float64(st.MetBound) / float64(st.Loops)
	}
	b.ReportMetric(mean, "meanSpeedup")
	b.ReportMetric(condMean, "condSpeedup")
	b.ReportMetric(noCondMean, "nocondSpeedup")
	b.ReportMetric(metPct, "pctMetBound")
}

// --- Ablation: linear vs binary II search (§2.2) ------------------------

func benchIISearch(b *testing.B, binary bool) {
	m := machine.Warp()
	var sumII, attempts float64
	for i := 0; i < b.N; i++ {
		sumII, attempts = 0, 0
		for _, k := range workloads.Livermore() {
			p, err := k.Build()
			if err != nil {
				b.Fatal(err)
			}
			_, rep, err := codegen.Compile(p, m, codegen.Options{
				Pipeline: pipeline.Options{BinarySearch: binary},
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, lr := range rep.Loops {
				if lr.Pipelined {
					sumII += float64(lr.II)
					attempts++
				}
			}
		}
	}
	b.ReportMetric(sumII, "totalII")
	b.ReportMetric(attempts, "pipelinedLoops")
}

func BenchmarkAblationIISearch_Linear(b *testing.B) { benchIISearch(b, false) }
func BenchmarkAblationIISearch_Binary(b *testing.B) { benchIISearch(b, true) }

// --- Ablation: modulo variable expansion on/off (§2.3) ------------------

func benchMVE(b *testing.B, disable bool) {
	m := machine.Warp()
	var mflops float64
	for i := 0; i < b.N; i++ {
		var k *workloads.Kernel
		for _, kk := range workloads.Livermore() {
			if kk.ID == 1 {
				k = kk
			}
		}
		p, err := k.Build()
		if err != nil {
			b.Fatal(err)
		}
		prog, _, err := codegen.Compile(p, m, codegen.Options{
			Pipeline: pipeline.Options{DisableMVE: disable},
		})
		if err != nil {
			b.Fatal(err)
		}
		_, st, err := sim.Run(prog, m)
		if err != nil {
			b.Fatal(err)
		}
		mflops = st.MFLOPS(m, 1)
	}
	b.ReportMetric(mflops, "k1MFLOPS")
}

func BenchmarkAblationMVE_On(b *testing.B)  { benchMVE(b, false) }
func BenchmarkAblationMVE_Off(b *testing.B) { benchMVE(b, true) }

// --- Ablation: MVE unroll policy (min-unroll vs lcm, §2.3) --------------

func benchPolicy(b *testing.B, pol pipeline.Policy) {
	m := machine.Warp()
	var instrs, fregs float64
	for i := 0; i < b.N; i++ {
		instrs, fregs = 0, 0
		for _, k := range workloads.Livermore() {
			p, err := k.Build()
			if err != nil {
				b.Fatal(err)
			}
			prog, rep, err := codegen.Compile(p, m, codegen.Options{
				Pipeline: pipeline.Options{Policy: pol},
			})
			if err != nil {
				b.Fatal(err)
			}
			instrs += float64(len(prog.Instrs))
			fregs += float64(rep.FRegsUsed)
		}
	}
	b.ReportMetric(instrs, "totalInstrs")
	b.ReportMetric(fregs, "totalFRegs")
}

func BenchmarkAblationPolicy_MinUnroll(b *testing.B) { benchPolicy(b, pipeline.PolicyMinUnroll) }
func BenchmarkAblationPolicy_LCM(b *testing.B)       { benchPolicy(b, pipeline.PolicyLCM) }

// --- Ablation: hierarchical reduction on/off (§3) -----------------------

func benchHier(b *testing.B, disable bool) {
	m := machine.Warp()
	var cycles float64
	for i := 0; i < b.N; i++ {
		cycles = 0
		for _, sp := range workloads.Suite()[:workloads.SuiteCondSize] {
			prog, _, err := codegen.Compile(sp.Prog, m, codegen.Options{DisableHier: disable})
			if err != nil {
				b.Fatal(err)
			}
			_, st, err := sim.Run(prog, m)
			if err != nil {
				b.Fatal(err)
			}
			cycles += float64(st.Cycles)
		}
	}
	b.ReportMetric(cycles, "condSuiteCycles")
}

func BenchmarkAblationHier_On(b *testing.B)  { benchHier(b, false) }
func BenchmarkAblationHier_Off(b *testing.B) { benchHier(b, true) }

// --- Ablation: loop reduction on/off (§3.2) ------------------------------

func benchLoopReduction(b *testing.B, disable bool) {
	m := machine.Warp()
	var cycles float64
	for i := 0; i < b.N; i++ {
		cycles = 0
		for _, kid := range []int{18, 21} {
			var k *workloads.Kernel
			for _, kk := range workloads.Livermore() {
				if kk.ID == kid {
					k = kk
				}
			}
			p, err := k.Build()
			if err != nil {
				b.Fatal(err)
			}
			prog, _, err := codegen.Compile(p, m, codegen.Options{DisableLoopReduction: disable})
			if err != nil {
				b.Fatal(err)
			}
			_, st, err := sim.Run(prog, m)
			if err != nil {
				b.Fatal(err)
			}
			cycles += float64(st.Cycles)
		}
	}
	b.ReportMetric(cycles, "nestCycles")
}

func BenchmarkAblationLoopReduction_On(b *testing.B)  { benchLoopReduction(b, false) }
func BenchmarkAblationLoopReduction_Off(b *testing.B) { benchLoopReduction(b, true) }

// --- Ablation: inner-loop full unrolling (outer-loop pipelining) ---------
//
// A 4-tap FIR filter: the inner accumulation is a 7-cycle recurrence, so
// loop reduction can at best run the inner loop at II = 7 and pay its
// prolog/epilog once per output sample.  Unrolling the 4 taps makes the
// outer loop innermost; the accumulator re-initializes every iteration,
// and the loop pipelines at its resource bound instead.
const firSrc = `
program fir;
const n = 256;
var a: array [0..259] of real;
    w: array [0..3] of real;
    c: array [0..255] of real;
    s: real;
    i, j: int;
begin
  for i := 0 to n-1 do begin
    s := 0.0;
    for j := 0 to 3 do
      s := s + a[i+j]*w[j];
    c[i] := s;
  end;
end.
`

func benchUnrollInner(b *testing.B, trip int) {
	var cycles float64
	for i := 0; i < b.N; i++ {
		obj, err := softpipe.CompileSource(firSrc, softpipe.Warp(), softpipe.Options{UnrollInnerTrip: trip})
		if err != nil {
			b.Fatal(err)
		}
		res, err := obj.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles = float64(res.Cycles)
	}
	b.ReportMetric(cycles, "firCycles")
}

func BenchmarkAblationUnrollInner_On(b *testing.B)  { benchUnrollInner(b, 4) }
func BenchmarkAblationUnrollInner_Off(b *testing.B) { benchUnrollInner(b, 0) }

// --- Ablation: symbolic closure vs per-II recomputation (§2.2.2) --------

func closureGraph() *depgraph.Graph {
	bld := ir.NewBuilder("closure")
	bld.Array("a", ir.KindFloat, 64)
	acc := bld.FConst(0)
	bld.ForN(64, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		v := bld.Load("a", p, ir.Aff(l.ID, 1, 0))
		w := bld.FMul(v, v)
		bld.FAddTo(acc, acc, w)
		bld.Store("a", p, w, ir.Aff(l.ID, 1, 0))
	})
	var loop *ir.LoopStmt
	for _, s := range bld.P.Body.Stmts {
		if l, ok := s.(*ir.LoopStmt); ok {
			loop = l
		}
	}
	ops, _ := loop.Body.Ops()
	m := machine.Warp()
	nodes := make([]*depgraph.Node, len(ops))
	for i, op := range ops {
		nodes[i] = depgraph.MustNodeFromOp(m, op)
	}
	return depgraph.Build(nodes, loop.ID)
}

// BenchmarkAblationClosure_Symbolic prices the paper's preprocessing:
// compute the symbolic all-points closure once, then evaluate it at 16
// candidate intervals.
func BenchmarkAblationClosure_Symbolic(b *testing.B) {
	g := closureGraph()
	scc := depgraph.TarjanSCC(g)
	var comp []int
	for ci, c := range scc.Components {
		if !scc.IsTrivial(g, ci) && len(c) > len(comp) {
			comp = c
		}
	}
	floor, err := depgraph.RecurrenceMIIOracle(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl, err := depgraph.NewClosure(g, comp, 1)
		if err != nil {
			b.Fatal(err)
		}
		for ii := floor; ii < floor+16; ii++ {
			for _, u := range comp {
				for _, v := range comp {
					_ = cl.DistAt(u, v, ii)
				}
			}
		}
	}
}

// BenchmarkAblationClosure_Recompute prices the alternative the paper
// avoids: recompute all longest paths from scratch at each candidate
// interval.
func BenchmarkAblationClosure_Recompute(b *testing.B) {
	g := closureGraph()
	floor, err := depgraph.RecurrenceMIIOracle(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ii := floor; ii < floor+16; ii++ {
			if _, ok := depgraph.LongestPathsAt(g, ii); !ok {
				b.Fatal("infeasible")
			}
		}
	}
}

// --- Scaling: wider data paths (Lam §6) ---------------------------------

func BenchmarkScalingWide(b *testing.B) {
	for _, factor := range []int{1, 2, 4} {
		factor := factor
		b.Run(fmt.Sprintf("parallel-loop-wide%d", factor), func(b *testing.B) {
			m := machine.Wide(factor)
			var mflops float64
			for i := 0; i < b.N; i++ {
				var k *workloads.Kernel
				for _, kk := range workloads.Livermore() {
					if kk.ID == 7 {
						k = kk
					}
				}
				p, err := k.Build()
				if err != nil {
					b.Fatal(err)
				}
				r, err := bench.Run(p, m, codegen.ModePipelined)
				if err != nil {
					b.Fatal(err)
				}
				mflops = r.CellMFLOPS
			}
			b.ReportMetric(mflops, "MFLOPS")
		})
		b.Run(fmt.Sprintf("recurrence-loop-wide%d", factor), func(b *testing.B) {
			m := machine.Wide(factor)
			var mflops float64
			for i := 0; i < b.N; i++ {
				var k *workloads.Kernel
				for _, kk := range workloads.Livermore() {
					if kk.ID == 5 {
						k = kk
					}
				}
				p, err := k.Build()
				if err != nil {
					b.Fatal(err)
				}
				r, err := bench.Run(p, m, codegen.ModePipelined)
				if err != nil {
					b.Fatal(err)
				}
				mflops = r.CellMFLOPS
			}
			b.ReportMetric(mflops, "MFLOPS")
		})
	}
}

// --- Compile-time benchmarks --------------------------------------------

func BenchmarkCompileLivermore(b *testing.B) {
	m := machine.Warp()
	kernels := workloads.Livermore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range kernels {
			p, err := k.Build()
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := codegen.Compile(p, m, codegen.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkReduceConditional(b *testing.B) {
	bld := softpipe.NewBuilder("hier")
	bld.Array("a", ir.KindFloat, 64)
	zero := bld.FConst(0)
	bld.ForN(64, func(l *ir.LoopCtx) {
		p := l.Pointer(0, 1)
		v := bld.Load("a", p, ir.Aff(l.ID, 1, 0))
		c := bld.FCmp(ir.PredGT, v, zero)
		bld.If(c, func() {
			bld.Store("a", p, bld.FMul(v, v), ir.Aff(l.ID, 1, 0))
		}, func() {
			bld.Store("a", p, zero, ir.Aff(l.ID, 1, 0))
		})
	})
	var loop *ir.LoopStmt
	for _, s := range bld.P.Body.Stmts {
		if l, ok := s.(*ir.LoopStmt); ok {
			loop = l
		}
	}
	m := machine.Warp()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hier.BuildNodes(bld.P, m, loop.ID, loop.Body); err != nil {
			b.Fatal(err)
		}
	}
}
