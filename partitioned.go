package softpipe

import (
	"fmt"
	"math"

	"softpipe/internal/partition"
	"softpipe/internal/sim"
	"softpipe/internal/sim/compiled"
	"softpipe/internal/verify"
	"softpipe/internal/vliw"
)

// Plan re-exports the partitioner's output: per-cell fragment programs
// plus the ownership maps describing where each observable lives.
type Plan = partition.Plan

// Machines replicates one machine n times — the homogeneous array shape
// (all of Lam §4.1's measured applications).
func Machines(m *Machine, n int) []*Machine {
	ms := make([]*Machine, n)
	for i := range ms {
		ms[i] = m
	}
	return ms
}

// ArrayCellStats is one cell's row in an array run: its scheduled
// initiation interval and the runtime counters showing whether the
// partition is balanced (a slow cell stalls its neighbours and fills
// its input queue).
type ArrayCellStats struct {
	// II is the scheduled initiation interval of the cell's loop (0 if
	// the fragment has no pipelined loop).
	II int
	// StallCycles counts global cycles the cell spent blocked on a
	// queue operation.
	StallCycles int64
	// MaxInQueue is the high-water occupancy of the cell's input queue.
	MaxInQueue int
}

// ArrayObject is a partitioned, per-cell-compiled program: the result
// of CompilePartitioned.  Each cell is an ordinary Object; the Plan
// records how observable state maps back onto the source program.
type ArrayObject struct {
	Plan *Plan
	// Cells are the compiled fragments in array order.
	Cells []*Object
	// CapacityWarnings lists channels whose estimated in-flight value
	// count (cut width × downstream pipeline fill) approaches the
	// 512-word queue bound; such arrays still run correctly under
	// back-pressure but may stall past the setup skew.
	CapacityWarnings []string

	source *Program
	tracer *Tracer
}

// Width reports the number of cells.
func (ao *ArrayObject) Width() int { return len(ao.Cells) }

// CellII returns each cell's scheduled initiation interval.  The
// array's steady-state throughput is one iteration per max(CellII())
// cycles — the slowest cell paces everyone (Lam §1).
func (ao *ArrayObject) CellII() []int {
	iis := make([]int, len(ao.Cells))
	for i, c := range ao.Cells {
		for _, l := range c.Report.Loops {
			if l.II > iis[i] {
				iis[i] = l.II
			}
		}
	}
	return iis
}

// CompileSourcePartitioned parses W2-like source, splits it across
// len(machines) cells, and compiles every fragment.
func CompileSourcePartitioned(src string, machines []*Machine, opts Options) (*ArrayObject, error) {
	p, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	return CompilePartitioned(p, machines, opts)
}

// CompilePartitioned splits p across len(machines) cells (see
// internal/partition for the planner: forward-only queue cuts over the
// dependence graph, stages balanced by per-fragment MII) and compiles
// each fragment for its machine.  The machines may be heterogeneous —
// a stage with more floating-point work can target a wider gen: cell.
func CompilePartitioned(p *Program, machines []*Machine, opts Options) (*ArrayObject, error) {
	sp := opts.Tracer.Begin("partition")
	plan, err := partition.Partition(p, machines)
	sp.End()
	if err != nil {
		return nil, err
	}
	ao := &ArrayObject{Plan: plan, source: p, tracer: opts.Tracer}
	for i, frag := range plan.Fragments {
		obj, err := Compile(frag, plan.Machines[i], opts)
		if err != nil {
			return nil, fmt.Errorf("softpipe: cell %d (%s): %w", i, frag.Name, err)
		}
		ao.Cells = append(ao.Cells, obj)
	}
	// Queue-capacity audit: the words in flight on channel i..i+1 are
	// bounded by cut width × (downstream pipeline fill + 1) during the
	// setup skew.  The planner already rejects widths beyond the queue
	// bound; here the achieved schedules are known, so flag channels
	// that will lean on back-pressure after setup.
	for b, w := range plan.CutWidths {
		depth := 1
		for _, l := range ao.Cells[b+1].Report.Loops {
			if l.Stages > depth {
				depth = l.Stages
			}
		}
		if inflight := w * (depth + 1); inflight > sim.QueueCapacity {
			ao.CapacityWarnings = append(ao.CapacityWarnings,
				fmt.Sprintf("channel %d->%d: ~%d words in flight (cut width %d × fill %d) exceeds the %d-word queue; expect steady-state stalls",
					b, b+1, inflight, w, depth+1, sim.QueueCapacity))
		}
	}
	return ao, nil
}

// RunArray executes the partitioned program as a linear array on the
// selected engine, preloading `input` on cell 0's channel.  The result
// carries per-cell II/stall/occupancy stats alongside the usual
// aggregate counters.
func (ao *ArrayObject) RunArray(input []float64, eng Engine) (*ArrayResult, error) {
	cells := make([]sim.Cell, len(ao.Cells))
	for i, o := range ao.Cells {
		if eng == EngineCompiled {
			cp, err := compiled.Build(o.Binary, o.Machine)
			if err != nil {
				return nil, fmt.Errorf("softpipe: cell %d: %w", i, err)
			}
			cells[i] = compiled.NewCell(cp)
		} else {
			cells[i] = sim.New(o.Binary, o.Machine)
		}
	}
	sp := ao.tracer.Begin("sim.array")
	arr := sim.NewArrayCells(cells, input)
	out, last, err := arr.Run()
	st := arr.Stats()
	sp.Arg("cycles", st.Cycles).End()
	if err != nil {
		return nil, err
	}
	res := &ArrayResult{
		Output:        out,
		LastCellState: last,
		Cycles:        st.Cycles,
		Flops:         st.Flops,
		MFLOPS:        st.MFLOPS(ao.Cells[0].Machine, 1),
	}
	iis := ao.CellII()
	for i, m := range arr.Metrics() {
		res.CellStats = append(res.CellStats, ArrayCellStats{
			II:          iis[i],
			StallCycles: m.StallCycles,
			MaxInQueue:  m.MaxInQueue,
		})
	}
	return res, nil
}

// Verify proves the partitioned realization equivalent to the
// single-cell source program: per-cell object correctness under the
// chained input tapes, owner-cell array/result dataflow, and host
// output — all by provenance-term identity against one shared
// reference execution (see verify.Array).  It then differential-tests
// the two simulator engines on the array and checks their outputs and
// owner-cell states are bit-identical.
func (ao *ArrayObject) Verify(input []float64) error {
	bins := make([]*vliw.Program, len(ao.Cells))
	ms := make([]*Machine, len(ao.Cells))
	for i, c := range ao.Cells {
		bins[i] = c.Binary
		ms[i] = c.Machine
	}
	ap := verify.ArrayPlan{
		Fragments:   ao.Plan.Fragments,
		ArrayOwner:  ao.Plan.ArrayOwner,
		ResultOwner: ao.Plan.ResultOwner,
	}
	sp := ao.tracer.Begin("verify.array")
	err := verify.Array(ao.source, ap, bins, ms, verify.Options{Input: input, Tracer: ao.tracer})
	sp.End()
	if err != nil {
		return err
	}
	ri, err := ao.RunArray(input, EngineInterp)
	if err != nil {
		return fmt.Errorf("softpipe: interp array run: %w", err)
	}
	rc, err := ao.RunArray(input, EngineCompiled)
	if err != nil {
		return fmt.Errorf("softpipe: compiled array run: %w", err)
	}
	if len(ri.Output) != len(rc.Output) {
		return fmt.Errorf("softpipe: engines disagree: interp sent %d words, compiled %d", len(ri.Output), len(rc.Output))
	}
	for i := range ri.Output {
		if math.Float64bits(ri.Output[i]) != math.Float64bits(rc.Output[i]) {
			return fmt.Errorf("softpipe: engines disagree at output[%d]: interp %v, compiled %v", i, ri.Output[i], rc.Output[i])
		}
	}
	if d := ri.LastCellState.Diff(rc.LastCellState); d != "" {
		return fmt.Errorf("softpipe: engines disagree on last-cell state: %s", d)
	}
	return nil
}
