// Systolic: the paper's applications ran on a 10-cell Warp array with
// data streaming between cells through queues (Lam §1).  This example
// builds the classic systolic matrix product: rows of A stream through
// the array, each cell multiplies them against its own block of B
// columns with w independent accumulators (saturating both FPUs at
// II = w), and the result blocks drain through the chain.  The paper's
// Table 4-1 reports 79.4 MFLOPS for 100x100 matmul; this program comes
// within a few percent on the simulated array.
package main

import (
	"fmt"
	"log"

	"softpipe"
	"softpipe/internal/workloads"
)

func main() {
	const n, cells = 100, 10
	warp := softpipe.Warp()

	src := workloads.SystolicMatmulSource(n, n/cells)
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	obj, err := softpipe.Compile(prog, warp, softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, lr := range obj.Report.Loops {
		if lr.Pipelined && lr.BodyOps > 20 && lr.TripCount == 100 {
			fmt.Printf("inner MAC loop: II=%d (bound %d) — %d flops per initiation\n",
				lr.II, lr.MII, 2*(n/cells))
		}
	}

	// Same code on every cell, per-cell data: B column blocks and the
	// phase-2 forwarding count.
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%7) * 0.25
		b[i] = float64(i%5)*0.5 - 1
	}
	w := n / cells
	cellObjs := make([]*softpipe.Object, cells)
	for c := 0; c < cells; c++ {
		block := make([]float64, n*w)
		for i := 0; i < n; i++ {
			for j := 0; j < w; j++ {
				block[i*w+j] = b[i*n+c*w+j]
			}
		}
		cellObjs[c] = obj.WithFloatData(map[string][]float64{
			"b":   block,
			"fwd": {float64(c * n * w)},
		})
	}
	input := make([]float64, 0, n*n)
	for i := 0; i < n; i++ {
		input = append(input, a[i*n:(i+1)*n]...)
	}
	res, err := softpipe.RunArray(cellObjs, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d cells, %d cycles, %d flops → %.1f MFLOPS (paper: 79.4)\n",
		cells, res.Cycles, res.Flops, res.MFLOPS)

	// Verify one result entry against the host.
	cOut := res.Output[n*n:] // the last cell forwards the A stream first
	want := 0.0
	for k := 0; k < n; k++ {
		want += a[k] * b[k*n]
	}
	fmt.Printf("c[0][0] = %v (host: %v)\n", cOut[0], want)
}
