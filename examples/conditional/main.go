// Conditional: hierarchical reduction (Lam §3) lets a loop whose body
// contains an if/then/else be software pipelined.  The conditional is
// scheduled as a pseudo-operation (both arms compacted, resources
// unioned), the kernel forks into padded arms, and iterations still
// overlap.  Compare against the same compiler with hierarchical
// reduction disabled.
package main

import (
	"fmt"
	"log"

	"softpipe"
)

const src = `
program clip;
const n = 300;
var a, c: array [0..299] of real;
    i: int;
begin
  for i := 0 to n-1 do
    if a[i] > 0.0 then
      c[i] := a[i] * 1.5
    else
      c[i] := a[i] + 1.5;
end.
`

func build() *softpipe.Program {
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	arr := prog.Array("a")
	for i := 0; i < 300; i++ {
		arr.InitF = append(arr.InitF, float64(i%9)-4)
	}
	return prog
}

func main() {
	warp := softpipe.Warp()
	for _, cfg := range []struct {
		name string
		opts softpipe.Options
	}{
		{"hierarchical reduction", softpipe.Options{}},
		{"hier disabled (ablation)", softpipe.Options{DisableHier: true}},
		{"unpipelined baseline", softpipe.Options{Baseline: true}},
	} {
		obj, err := softpipe.Compile(build(), warp, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := obj.Verify()
		if err != nil {
			log.Fatal(err)
		}
		lr := obj.Report.Loops[0]
		fmt.Printf("%-26s cycles=%-6d MFLOPS/cell=%5.2f pipelined=%-5v II=%d\n",
			cfg.name, res.Cycles, res.CellMFLOPS, lr.Pipelined, lr.II)
	}
}
