// Imagefilter: a two-stage image pipeline (3x3 smoothing followed by a
// Roberts edge operator), the kind of low-level vision workload the Warp
// machine ran (Lam §1, Table 4-1).  Shows multi-loop programs, 2-D
// arrays, and per-loop scheduling reports.
package main

import (
	"fmt"
	"log"

	"softpipe"
)

const src = `
program edges;
const n = 48;
var img:    array [0..49] of array [0..49] of real;
    smooth: array [0..48] of array [0..48] of real;
    out:    array [0..47] of array [0..47] of real;
    i, j: int;
begin
  for i := 0 to n do
    for j := 0 to n do
      smooth[i][j] := 0.25*img[i][j] + 0.25*img[i][j+1] +
                      0.25*img[i+1][j] + 0.25*img[i+1][j+1];
  for i := 0 to n-1 do
    for j := 0 to n-1 do
      out[i][j] := abs(smooth[i][j] - smooth[i+1][j+1]) +
                   abs(smooth[i][j+1] - smooth[i+1][j]);
end.
`

func main() {
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	img := prog.Array("img")
	for i := 0; i < img.Size; i++ {
		img.InitF = append(img.InitF, float64((i*i)%97)/97.0)
	}
	obj, err := softpipe.Compile(prog, softpipe.Warp(), softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := obj.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image pipeline: %d cycles, %.2f MFLOPS/cell (%.1f on a 10-cell array)\n",
		res.Cycles, res.CellMFLOPS, res.ArrayMFLOPS)
	for _, lr := range obj.Report.Loops {
		kind := "outer"
		if lr.Pipelined {
			kind = "inner (pipelined)"
		}
		fmt.Printf("  loop %d: %-18s II=%-3d bound=%-3d met=%v\n",
			lr.LoopID, kind, lr.II, lr.MII, lr.MetLower)
	}
}
