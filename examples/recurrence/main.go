// Recurrence: the paper's key analysis example (§4.2, "data dependency").
// An accumulation  q := q + z[k]*x[k]  is bound by the 7-cycle adder
// pipeline: one iteration every 7 cycles, 2 flops per iteration, so the
// cell tops out at 2·5MHz/7 ≈ 1.43 MFLOPS no matter how parallel the
// hardware is — while the independent vector update reaches the memory
// bound instead.  This example shows both, plus the initiation intervals
// the modulo scheduler proves optimal.
package main

import (
	"fmt"
	"log"

	"softpipe"
)

func run(name, src string) {
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range prog.Arrays {
		for i := 0; i < a.Size; i++ {
			a.InitF = append(a.InitF, float64(i%13)*0.25)
		}
	}
	obj, err := softpipe.Compile(prog, softpipe.Warp(), softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := obj.Verify()
	if err != nil {
		log.Fatal(err)
	}
	lr := obj.Report.Loops[0]
	fmt.Printf("%-12s II=%-3d (ResMII=%d RecMII=%d)  unroll=%d  %6.2f MFLOPS/cell\n",
		name, lr.II, lr.ResMII, lr.RecMII, lr.Unroll, res.CellMFLOPS)
}

func main() {
	run("dot-product", `
program dot;
var x, z: array [0..499] of real;
    q: real;
    k: int;
begin
  q := 0.0;
  for k := 0 to 499 do
    q := q + z[k]*x[k];
end.
`)
	run("vector-mac", `
program vmac;
var x, z, y: array [0..499] of real;
    k: int;
begin
  for k := 0 to 499 do
    y[k] := y[k] + z[k]*x[k];
end.
`)
}
