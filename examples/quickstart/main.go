// Quickstart: compile a W2-like SAXPY loop, software pipeline it, run it
// on the cycle-accurate Warp-cell model, and compare against the locally
// compacted (unpipelined) baseline.
package main

import (
	"fmt"
	"log"

	"softpipe"
)

const src = `
program saxpy;
const n = 200;
var x, y: array [0..199] of real;
    a: real;
    i: int;
begin
  a := 3.0;
  for i := 0 to n-1 do
    y[i] := y[i] + a * x[i];
end.
`

func main() {
	warp := softpipe.Warp()

	// Parse once so we can preset the input arrays.
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	xs := prog.Array("x")
	ys := prog.Array("y")
	for i := 0; i < 200; i++ {
		xs.InitF = append(xs.InitF, float64(i))
		ys.InitF = append(ys.InitF, 1.0)
	}

	pipelined, err := softpipe.Compile(prog, warp, softpipe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := softpipe.Compile(prog, warp, softpipe.Options{Baseline: true})
	if err != nil {
		log.Fatal(err)
	}

	pr, err := pipelined.Verify() // run + check against the interpreter
	if err != nil {
		log.Fatal(err)
	}
	br, err := baseline.Run()
	if err != nil {
		log.Fatal(err)
	}

	lr := pipelined.Report.Loops[0]
	fmt.Printf("loop: pipelined=%v  II=%d (lower bound %d, met=%v)  stages=%d  unroll=%d\n",
		lr.Pipelined, lr.II, lr.MII, lr.MetLower, lr.Stages, lr.Unroll)
	fmt.Printf("pipelined:   %6d cycles  %5.2f MFLOPS/cell\n", pr.Cycles, pr.CellMFLOPS)
	fmt.Printf("unpipelined: %6d cycles  %5.2f MFLOPS/cell\n", br.Cycles, br.CellMFLOPS)
	fmt.Printf("speedup: %.2fx\n", float64(br.Cycles)/float64(pr.Cycles))
	fmt.Printf("y[199] = %v (want %v)\n", pr.State.FloatArrays["y"][199], 1+3.0*199)
}
