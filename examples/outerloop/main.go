// Outer-loop software pipelining (§3.2 taken to its limit).  A 4-tap
// FIR filter has a serial inner loop: each tap feeds the next through
// the 7-cycle adder, so the inner loop cannot initiate faster than one
// tap per 7 cycles, and loop reduction additionally pays the inner
// prolog and epilog once per output sample.  Fully unrolling the four
// taps (Options.UnrollInnerTrip) makes the *outer* loop innermost: the
// accumulator is re-initialized every sample, the recurrence disappears,
// and the modulo scheduler initiates a whole sample per memory-bound II.
package main

import (
	"fmt"
	"log"

	"softpipe"
)

const src = `
program fir;
const n = 512;
var a: array [0..515] of real;
    w: array [0..3] of real;
    c: array [0..511] of real;
    s: real;
    i, j: int;
begin
  for i := 0 to n-1 do begin
    s := 0.0;
    for j := 0 to 3 do
      s := s + a[i+j]*w[j];
    c[i] := s;
  end;
end.
`

func compile(unroll int) (*softpipe.Object, *softpipe.Result) {
	prog, err := softpipe.ParseSource(src)
	if err != nil {
		log.Fatal(err)
	}
	a := prog.Array("a")
	for i := 0; i < a.Size; i++ {
		a.InitF = append(a.InitF, float64(i%17)*0.5-4)
	}
	prog.Array("w").InitF = []float64{0.125, 0.375, 0.375, 0.125}
	obj, err := softpipe.Compile(prog, softpipe.Warp(), softpipe.Options{UnrollInnerTrip: unroll})
	if err != nil {
		log.Fatal(err)
	}
	res, err := obj.Verify()
	if err != nil {
		log.Fatal(err)
	}
	return obj, res
}

func main() {
	_, reduced := compile(0)
	obj, unrolled := compile(4)

	fmt.Printf("loop reduction only:    %6d cycles  %5.2f MFLOPS/cell\n",
		reduced.Cycles, reduced.CellMFLOPS)
	lr := obj.Report.Loops[0]
	fmt.Printf("outer-loop pipelining:  %6d cycles  %5.2f MFLOPS/cell  (one loop, II=%d, bound %d)\n",
		unrolled.Cycles, unrolled.CellMFLOPS, lr.II, lr.MII)
	fmt.Printf("speedup: %.1fx — both verified bit-exact against the interpreter\n",
		float64(reduced.Cycles)/float64(unrolled.Cycles))
}
